//! Master inverted column index over text columns.
//!
//! The Duoquest front end offers autocomplete over "a master inverted column
//! index containing all text columns in the database" (paper §4). The same
//! structure is used by the PBE baseline to locate candidate projection columns
//! from example cell values, and by literal tagging in the NLQ crate.

use crate::database::TableData;
use crate::schema::{ColumnId, Schema, TableId};
use crate::types::{DataType, Value};
use std::collections::HashMap;

/// A single index hit: a column containing the searched value and how often.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexHit {
    /// Column containing the value.
    pub column: ColumnId,
    /// Number of rows of that column holding the value.
    pub count: usize,
}

/// Inverted index mapping lowercase text values to the columns containing them.
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    /// value (lowercased) -> hits
    exact: HashMap<String, Vec<IndexHit>>,
    /// all distinct values per column, used for prefix autocomplete
    values: HashMap<ColumnId, Vec<String>>,
}

impl InvertedIndex {
    /// Build the index from a schema and its table data.
    pub fn build(schema: &Schema, data: &[TableData]) -> Self {
        let mut exact: HashMap<String, HashMap<ColumnId, usize>> = HashMap::new();
        let mut values: HashMap<ColumnId, Vec<String>> = HashMap::new();
        for (ti, table) in schema.tables.iter().enumerate() {
            for (ci, col) in table.columns.iter().enumerate() {
                if col.dtype != DataType::Text {
                    continue;
                }
                let cid = ColumnId { table: TableId(ti), column: ci };
                let mut seen: Vec<String> = Vec::new();
                for row in &data[ti].rows {
                    if let Value::Text(s) = &row.0[ci] {
                        let key = s.to_ascii_lowercase();
                        *exact.entry(key.clone()).or_default().entry(cid).or_insert(0) += 1;
                        if !seen.contains(&key) {
                            seen.push(key);
                        }
                    }
                }
                seen.sort();
                values.insert(cid, seen);
            }
        }
        let exact = exact
            .into_iter()
            .map(|(k, per_col)| {
                let mut hits: Vec<IndexHit> =
                    per_col.into_iter().map(|(column, count)| IndexHit { column, count }).collect();
                hits.sort_by_key(|h| (h.column.table, h.column.column));
                (k, hits)
            })
            .collect();
        InvertedIndex { exact, values }
    }

    /// Columns containing the exact (case-insensitive) text value.
    pub fn lookup(&self, value: &str) -> &[IndexHit] {
        self.exact.get(&value.to_ascii_lowercase()).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether any text column in the database contains the value.
    pub fn contains(&self, value: &str) -> bool {
        !self.lookup(value).is_empty()
    }

    /// Autocomplete: distinct values starting with the given prefix, across all
    /// text columns, lexicographically sorted and capped at `limit` entries.
    pub fn autocomplete(&self, prefix: &str, limit: usize) -> Vec<String> {
        let prefix = prefix.to_ascii_lowercase();
        let mut out: Vec<String> = Vec::new();
        for vals in self.values.values() {
            for v in vals {
                if v.starts_with(&prefix) && !out.contains(v) {
                    out.push(v.clone());
                }
            }
        }
        out.sort();
        out.truncate(limit);
        out
    }

    /// Autocomplete restricted to a single column.
    pub fn autocomplete_column(&self, column: ColumnId, prefix: &str, limit: usize) -> Vec<String> {
        let prefix = prefix.to_ascii_lowercase();
        self.values
            .get(&column)
            .map(|vals| {
                vals.iter().filter(|v| v.starts_with(&prefix)).take(limit).cloned().collect()
            })
            .unwrap_or_default()
    }

    /// Number of distinct indexed values.
    pub fn distinct_value_count(&self) -> usize {
        self.exact.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::schema::{ColumnDef, TableDef};

    fn db() -> Database {
        let mut s = Schema::new("test");
        s.add_table(TableDef::new(
            "conference",
            vec![ColumnDef::number("cid"), ColumnDef::text("name")],
            Some(0),
        ));
        s.add_table(TableDef::new(
            "author",
            vec![ColumnDef::number("aid"), ColumnDef::text("name")],
            Some(0),
        ));
        let mut d = Database::new(s).unwrap();
        d.insert("conference", vec![Value::int(1), Value::text("SIGMOD")]).unwrap();
        d.insert("conference", vec![Value::int(2), Value::text("SIGIR")]).unwrap();
        d.insert("conference", vec![Value::int(3), Value::text("VLDB")]).unwrap();
        d.insert("author", vec![Value::int(1), Value::text("Sigmund Freud")]).unwrap();
        d.insert("author", vec![Value::int(2), Value::text("sigmod")]).unwrap();
        d.rebuild_index();
        d
    }

    #[test]
    fn exact_lookup_spans_columns() {
        let d = db();
        let hits = d.index().lookup("SIGMOD");
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].count, 1);
        assert!(d.index().contains("vldb"));
        assert!(!d.index().contains("ICDE"));
    }

    #[test]
    fn autocomplete_prefix() {
        let d = db();
        let opts = d.index().autocomplete("sig", 10);
        assert_eq!(
            opts,
            vec!["sigir".to_string(), "sigmod".to_string(), "sigmund freud".to_string()]
        );
        let capped = d.index().autocomplete("sig", 2);
        assert_eq!(capped.len(), 2);
    }

    #[test]
    fn autocomplete_single_column() {
        let d = db();
        let col = d.schema().column_id("conference", "name").unwrap();
        let opts = d.index().autocomplete_column(col, "sig", 10);
        assert_eq!(opts, vec!["sigir".to_string(), "sigmod".to_string()]);
    }

    #[test]
    fn numeric_columns_not_indexed() {
        let d = db();
        assert!(!d.index().contains("1"));
        assert!(d.index().distinct_value_count() >= 4);
    }
}
