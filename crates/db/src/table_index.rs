//! Ordered secondary indexes over table columns.
//!
//! [`TableIndex`] gives every column of a table two physical access paths the
//! executor can substitute for a scan:
//!
//! * **Equality match lists** (`by_key`): a hash map from the column's
//!   canonical [`Value::group_key`] to the row ids holding that key, in
//!   ascending row order — exactly the structure the hash join builds on the
//!   fly, so an indexed join column turns a hash join into an
//!   **index-nested-loop join** with zero build cost, and an equality
//!   predicate into a point lookup. NULLs are excluded, mirroring the join
//!   build side.
//! * **A sorted run** (`sorted`): all row ids (NULLs included) ordered by
//!   `(value, row id)` under the same total order the executor sorts result
//!   sets with. Range predicates become binary-searched slices, and
//!   `ORDER BY c LIMIT k` can stream rows in index order instead of sorting —
//!   ties break by row id, which is exactly the order a stable sort of the
//!   storage leaves them in, so index-ordered emission is byte-identical to
//!   materialize-and-sort.
//!
//! Indexes are built by `Database::rebuild_index` and maintained
//! incrementally by the write path (`insert`, `update_cell`); they are never
//! consulted while absent, so a database that skips `rebuild_index` simply
//! runs every query as a scan.
//!
//! # NaN caveat
//!
//! `Value::total_cmp` treats NaN as equal to every number, which is not a
//! total order; the sorted run instead places NaN after all numbers and
//! remembers (`can_order`) that the column contained one. Order- and
//! range-based access is disabled for such columns — equality lookups remain
//! valid — so the executor never relies on an index order that could diverge
//! from the sort the materializing strategy performs.

use crate::database::Row;
use crate::types::Value;
use std::cmp::Ordering;
use std::collections::HashMap;

/// The total order of the sorted run: [`Value::total_cmp`], except that NaN
/// compares after every other number (and equal to itself) instead of equal
/// to everything, so binary search stays well-defined.
fn ord_cmp(a: &Value, b: &Value) -> Ordering {
    if let (Value::Number(x), Value::Number(y)) = (a, b) {
        return x.partial_cmp(y).unwrap_or_else(|| x.is_nan().cmp(&y.is_nan()));
    }
    a.total_cmp(b)
}

/// Cardinality and bounds statistics of one indexed column, used by the
/// executor's selectivity-driven join planning.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexStats {
    /// Total rows in the table.
    pub rows: usize,
    /// Rows with a non-NULL value in this column.
    pub non_null: usize,
    /// Distinct non-NULL keys.
    pub distinct: usize,
    /// Smallest non-NULL value, if any.
    pub min: Option<Value>,
    /// Largest non-NULL value, if any.
    pub max: Option<Value>,
}

/// The ordered secondary index of one column. See the module docs for the
/// two structures and their invariants.
#[derive(Debug, Clone, Default)]
pub struct ColumnIndex {
    /// `group_key` → row ids in ascending order; NULL rows excluded.
    by_key: HashMap<String, Vec<usize>>,
    /// All row ids ordered by `(ord_cmp value, row id)`.
    sorted: Vec<usize>,
    /// Rows with a non-NULL value.
    non_null: usize,
    /// Longest match list ever observed — a monotone upper bound, so a
    /// `true` [`ColumnIndex::is_unique`] can be trusted after updates
    /// (rebuilding refreshes it exactly).
    max_matches: usize,
    /// A NaN was seen in this column; order/range access is then disabled.
    has_nan: bool,
}

impl ColumnIndex {
    /// Build the index over one column of `rows`.
    pub fn build(rows: &[Row], col: usize) -> ColumnIndex {
        let mut idx = ColumnIndex {
            by_key: HashMap::new(),
            sorted: (0..rows.len()).collect(),
            non_null: 0,
            max_matches: 0,
            has_nan: false,
        };
        idx.sorted
            .sort_by(|&a, &b| ord_cmp(&rows[a].0[col], &rows[b].0[col]).then_with(|| a.cmp(&b)));
        for (ri, row) in rows.iter().enumerate() {
            idx.note_value(&row.0[col]);
            let v = &row.0[col];
            if !v.is_null() {
                idx.non_null += 1;
                let list = idx.by_key.entry(v.group_key()).or_default();
                list.push(ri);
                idx.max_matches = idx.max_matches.max(list.len());
            }
        }
        idx
    }

    fn note_value(&mut self, v: &Value) {
        if let Value::Number(n) = v {
            if n.is_nan() {
                self.has_nan = true;
            }
        }
    }

    /// Index the row at `row_idx`, already present in `rows`. Used both for
    /// appends and to re-insert an updated row.
    pub(crate) fn insert_row(&mut self, rows: &[Row], col: usize, row_idx: usize) {
        let v = &rows[row_idx].0[col];
        self.note_value(v);
        let pos = self.sorted.partition_point(|&i| match ord_cmp(&rows[i].0[col], v) {
            Ordering::Less => true,
            Ordering::Equal => i < row_idx,
            Ordering::Greater => false,
        });
        self.sorted.insert(pos, row_idx);
        if !v.is_null() {
            self.non_null += 1;
            let list = self.by_key.entry(v.group_key()).or_default();
            let at = list.partition_point(|&i| i < row_idx);
            list.insert(at, row_idx);
            self.max_matches = self.max_matches.max(list.len());
        }
    }

    /// Re-index the row at `row_idx` after its cell changed from `old` to
    /// the value now stored in `rows`.
    pub(crate) fn update_row(&mut self, rows: &[Row], col: usize, row_idx: usize, old: &Value) {
        // Locate the row's slot under its *old* value without ever reading
        // the (already mutated) cell: the row id itself identifies the slot
        // inside its equal-value run.
        let pos = self.sorted.partition_point(|&i| {
            i != row_idx
                && match ord_cmp(&rows[i].0[col], old) {
                    Ordering::Less => true,
                    Ordering::Equal => i < row_idx,
                    Ordering::Greater => false,
                }
        });
        debug_assert_eq!(self.sorted.get(pos), Some(&row_idx), "stale index on update");
        self.sorted.remove(pos);
        if !old.is_null() {
            self.non_null -= 1;
            let key = old.group_key();
            if let Some(list) = self.by_key.get_mut(&key) {
                list.retain(|&i| i != row_idx);
                if list.is_empty() {
                    self.by_key.remove(&key);
                }
            }
        }
        self.insert_row(rows, col, row_idx);
    }

    /// Row ids whose value matches `key` (under [`Value::group_key`]
    /// canonicalization), ascending. Empty for NULL or unseen keys.
    pub fn lookup(&self, key: &Value) -> &[usize] {
        if key.is_null() {
            return &[];
        }
        self.by_key.get(&key.group_key()).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The full equality match-list map — the prebuilt hash-join build side.
    pub fn match_lists(&self) -> &HashMap<String, Vec<usize>> {
        &self.by_key
    }

    /// Row ids with `lo <= value <= hi` (bounds optionally exclusive), in
    /// `(value, row id)` order. Only meaningful when [`ColumnIndex::can_order`]
    /// holds.
    pub fn range(
        &self,
        rows: &[Row],
        col: usize,
        lo: &Value,
        lo_incl: bool,
        hi: &Value,
        hi_incl: bool,
    ) -> &[usize] {
        let start = self.sorted.partition_point(|&i| {
            let o = ord_cmp(&rows[i].0[col], lo);
            o == Ordering::Less || (!lo_incl && o == Ordering::Equal)
        });
        let end = self.sorted.partition_point(|&i| {
            let o = ord_cmp(&rows[i].0[col], hi);
            o == Ordering::Less || (hi_incl && o == Ordering::Equal)
        });
        &self.sorted[start..end.max(start)]
    }

    /// All row ids in ascending `(value, row id)` order — the streaming order
    /// for `ORDER BY c ASC`.
    pub fn ordered(&self) -> &[usize] {
        &self.sorted
    }

    /// All row ids in descending value order with ties in **ascending** row
    /// order — exactly the order a stable descending sort of the storage
    /// produces, so `ORDER BY c DESC LIMIT k` can stream from it.
    pub fn ordered_desc<'a>(&'a self, rows: &'a [Row], col: usize) -> OrderedDesc<'a> {
        OrderedDesc { sorted: &self.sorted, rows, col, hi: self.sorted.len(), run: 0..0 }
    }

    /// Whether order- and range-based access is valid for this column (no
    /// NaN was ever stored; see the module docs).
    pub fn can_order(&self) -> bool {
        !self.has_nan
    }

    /// Whether every non-NULL key matches at most one row. Conservative
    /// after updates (an upper bound that never shrinks until rebuild).
    pub fn is_unique(&self) -> bool {
        self.max_matches <= 1
    }

    /// Cardinality/min/max statistics of the column.
    pub fn stats(&self, rows: &[Row], col: usize) -> IndexStats {
        let nulls = self.sorted.len() - self.non_null;
        IndexStats {
            rows: self.sorted.len(),
            non_null: self.non_null,
            distinct: self.by_key.len(),
            min: (self.non_null > 0).then(|| rows[self.sorted[nulls]].0[col].clone()),
            max: (self.non_null > 0)
                .then(|| rows[*self.sorted.last().expect("non_null > 0")].0[col].clone()),
        }
    }
}

/// Iterator behind [`ColumnIndex::ordered_desc`]: walks the sorted run from
/// the tail in runs of equal values, emitting each run in forward (ascending
/// row id) order.
#[derive(Debug)]
pub struct OrderedDesc<'a> {
    sorted: &'a [usize],
    rows: &'a [Row],
    col: usize,
    /// Upper bound (exclusive) of the not-yet-emitted region.
    hi: usize,
    /// The current equal-value run being emitted forward.
    run: std::ops::Range<usize>,
}

impl Iterator for OrderedDesc<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if let Some(p) = self.run.next() {
            return Some(self.sorted[p]);
        }
        if self.hi == 0 {
            return None;
        }
        let anchor = &self.rows[self.sorted[self.hi - 1]].0[self.col];
        let mut start = self.hi - 1;
        while start > 0
            && ord_cmp(&self.rows[self.sorted[start - 1]].0[self.col], anchor) == Ordering::Equal
        {
            start -= 1;
        }
        self.run = start..self.hi;
        self.hi = start;
        let p = self.run.next().expect("run is non-empty");
        Some(self.sorted[p])
    }
}

/// The ordered secondary indexes of all columns of one table.
#[derive(Debug, Clone, Default)]
pub struct TableIndex {
    columns: Vec<ColumnIndex>,
}

impl TableIndex {
    /// Build indexes over every column of a table.
    pub fn build(rows: &[Row], column_count: usize) -> TableIndex {
        TableIndex { columns: (0..column_count).map(|ci| ColumnIndex::build(rows, ci)).collect() }
    }

    /// The index of one column.
    pub fn column(&self, ci: usize) -> &ColumnIndex {
        &self.columns[ci]
    }

    /// Index a freshly appended row (already present in `rows`).
    pub(crate) fn insert_appended(&mut self, rows: &[Row], row_idx: usize) {
        for (ci, idx) in self.columns.iter_mut().enumerate() {
            idx.insert_row(rows, ci, row_idx);
        }
    }

    /// Re-index one cell after an in-place update.
    pub(crate) fn update_cell(&mut self, rows: &[Row], col: usize, row_idx: usize, old: &Value) {
        self.columns[col].update_row(rows, col, row_idx, old);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(vals: &[Value]) -> Vec<Row> {
        vals.iter().map(|v| Row(vec![v.clone()])).collect()
    }

    #[test]
    fn build_sorts_by_value_then_row_id() {
        let data = rows(&[Value::int(3), Value::int(1), Value::Null, Value::int(1), Value::int(2)]);
        let idx = ColumnIndex::build(&data, 0);
        assert_eq!(idx.ordered(), &[2, 1, 3, 4, 0], "NULL first, ties by row id");
        assert_eq!(idx.lookup(&Value::int(1)), &[1, 3]);
        assert!(idx.lookup(&Value::Null).is_empty(), "NULL never matches");
        let stats = idx.stats(&data, 0);
        assert_eq!((stats.rows, stats.non_null, stats.distinct), (5, 4, 3));
        assert_eq!(stats.min, Some(Value::int(1)));
        assert_eq!(stats.max, Some(Value::int(3)));
    }

    #[test]
    fn ordered_desc_reverses_values_but_not_ties() {
        let data = rows(&[Value::int(2), Value::int(1), Value::int(2), Value::int(1)]);
        let idx = ColumnIndex::build(&data, 0);
        let desc: Vec<usize> = idx.ordered_desc(&data, 0).collect();
        assert_eq!(desc, vec![0, 2, 1, 3], "values descend, ties stay in row order");
    }

    #[test]
    fn range_slices_binary_search_bounds() {
        let data = rows(&[Value::int(5), Value::int(1), Value::int(3), Value::int(9)]);
        let idx = ColumnIndex::build(&data, 0);
        let hits = idx.range(&data, 0, &Value::int(2), true, &Value::int(5), true);
        assert_eq!(hits, &[2, 0], "3 then 5, in value order");
        let open = idx.range(&data, 0, &Value::int(3), false, &Value::int(9), false);
        assert_eq!(open, &[0], "both bounds exclusive");
    }

    #[test]
    fn incremental_insert_and_update_match_rebuild() {
        let mut data = rows(&[Value::int(4), Value::int(2)]);
        let mut idx = ColumnIndex::build(&data, 0);

        data.push(Row(vec![Value::int(3)]));
        idx.insert_row(&data, 0, 2);
        data.push(Row(vec![Value::int(2)]));
        idx.insert_row(&data, 0, 3);
        let rebuilt = ColumnIndex::build(&data, 0);
        assert_eq!(idx.ordered(), rebuilt.ordered());
        assert_eq!(idx.lookup(&Value::int(2)), rebuilt.lookup(&Value::int(2)));

        let old = std::mem::replace(&mut data[0].0[0], Value::int(1));
        idx.update_row(&data, 0, 0, &old);
        let rebuilt = ColumnIndex::build(&data, 0);
        assert_eq!(idx.ordered(), rebuilt.ordered());
        assert!(idx.lookup(&Value::int(4)).is_empty(), "old key vacated");
        assert_eq!(idx.lookup(&Value::int(1)), &[0]);
    }

    #[test]
    fn uniqueness_is_a_monotone_upper_bound() {
        let data = rows(&[Value::int(1), Value::int(2)]);
        let mut idx = ColumnIndex::build(&data, 0);
        assert!(idx.is_unique());
        let mut data = data;
        data.push(Row(vec![Value::int(1)]));
        idx.insert_row(&data, 0, 2);
        assert!(!idx.is_unique());
        // Updating the duplicate away keeps the conservative bound...
        let old = std::mem::replace(&mut data[2].0[0], Value::int(3));
        idx.update_row(&data, 0, 2, &old);
        assert!(!idx.is_unique());
        // ...and a rebuild refreshes it exactly.
        assert!(ColumnIndex::build(&data, 0).is_unique());
    }

    #[test]
    fn nan_disables_order_access_but_not_lookups() {
        let data = rows(&[Value::Number(f64::NAN), Value::int(1)]);
        let idx = ColumnIndex::build(&data, 0);
        assert!(!idx.can_order());
        assert_eq!(idx.lookup(&Value::int(1)), &[1]);
    }
}
