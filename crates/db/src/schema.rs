//! Schema model: tables, columns, primary keys and foreign-key relationships.
//!
//! Duoquest restricts joins to inner joins along explicitly declared
//! foreign-key → primary-key relationships (paper §2.5), so the schema keeps an
//! explicit FK list which later feeds the schema join graph.

use crate::error::{DbError, DbResult};
use crate::types::DataType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a table within a [`Schema`] (index into `Schema::tables`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TableId(pub usize);

/// Identifier of a column: table index plus column index within that table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ColumnId {
    /// Owning table.
    pub table: TableId,
    /// Position of the column within the table definition.
    pub column: usize,
}

impl ColumnId {
    /// Construct a column id from raw indices.
    pub fn new(table: usize, column: usize) -> Self {
        ColumnId { table: TableId(table), column }
    }
}

impl fmt::Display for ColumnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}c{}", self.table.0, self.column)
    }
}

/// Definition of a single column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name (the paper recommends complete words, e.g. `author_id`).
    pub name: String,
    /// Declared data type.
    pub dtype: DataType,
}

impl ColumnDef {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        ColumnDef { name: name.into(), dtype }
    }

    /// Text column shorthand.
    pub fn text(name: impl Into<String>) -> Self {
        Self::new(name, DataType::Text)
    }

    /// Number column shorthand.
    pub fn number(name: impl Into<String>) -> Self {
        Self::new(name, DataType::Number)
    }
}

/// Definition of a table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableDef {
    /// Table name.
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<ColumnDef>,
    /// Index of the primary key column, if any.
    pub primary_key: Option<usize>,
}

impl TableDef {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        columns: Vec<ColumnDef>,
        primary_key: Option<usize>,
    ) -> Self {
        TableDef { name: name.into(), columns, primary_key }
    }

    /// Look up a column index by name (case-insensitive).
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name.eq_ignore_ascii_case(name))
    }
}

/// An explicit foreign-key → primary-key relationship between two columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ForeignKey {
    /// The referencing (foreign key) column.
    pub from: ColumnId,
    /// The referenced (primary key) column.
    pub to: ColumnId,
}

/// A database schema: tables plus foreign-key relationships.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    /// Human-readable schema/database name.
    pub name: String,
    /// Table definitions.
    pub tables: Vec<TableDef>,
    /// Foreign-key relationships.
    pub foreign_keys: Vec<ForeignKey>,
}

impl Schema {
    /// Create an empty schema with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Schema { name: name.into(), tables: Vec::new(), foreign_keys: Vec::new() }
    }

    /// Add a table and return its id.
    pub fn add_table(&mut self, table: TableDef) -> TableId {
        self.tables.push(table);
        TableId(self.tables.len() - 1)
    }

    /// Declare a foreign-key relationship between two columns identified by name.
    pub fn add_foreign_key(
        &mut self,
        from_table: &str,
        from_column: &str,
        to_table: &str,
        to_column: &str,
    ) -> DbResult<()> {
        let from = self.column_id(from_table, from_column)?;
        let to = self.column_id(to_table, to_column)?;
        if self.column(from).dtype != self.column(to).dtype {
            return Err(DbError::InvalidForeignKey(format!(
                "{from_table}.{from_column} and {to_table}.{to_column} have different types"
            )));
        }
        self.foreign_keys.push(ForeignKey { from, to });
        Ok(())
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Total number of columns across all tables.
    pub fn column_count(&self) -> usize {
        self.tables.iter().map(|t| t.columns.len()).sum()
    }

    /// Number of declared foreign keys.
    pub fn foreign_key_count(&self) -> usize {
        self.foreign_keys.len()
    }

    /// Look up a table id by name (case-insensitive).
    pub fn table_id(&self, name: &str) -> DbResult<TableId> {
        self.tables
            .iter()
            .position(|t| t.name.eq_ignore_ascii_case(name))
            .map(TableId)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Access a table definition.
    pub fn table(&self, id: TableId) -> &TableDef {
        &self.tables[id.0]
    }

    /// Look up a fully qualified column id by table and column name.
    pub fn column_id(&self, table: &str, column: &str) -> DbResult<ColumnId> {
        let tid = self.table_id(table)?;
        let cidx = self.table(tid).column_index(column).ok_or_else(|| DbError::UnknownColumn {
            table: table.to_string(),
            column: column.to_string(),
        })?;
        Ok(ColumnId { table: tid, column: cidx })
    }

    /// Access a column definition.
    pub fn column(&self, id: ColumnId) -> &ColumnDef {
        &self.tables[id.table.0].columns[id.column]
    }

    /// Fully qualified `table.column` name for display.
    pub fn qualified_name(&self, id: ColumnId) -> String {
        format!("{}.{}", self.table(id.table).name, self.column(id).name)
    }

    /// Iterate over every column id in the schema in deterministic order.
    pub fn all_columns(&self) -> impl Iterator<Item = ColumnId> + '_ {
        self.tables.iter().enumerate().flat_map(|(ti, t)| {
            (0..t.columns.len()).map(move |ci| ColumnId { table: TableId(ti), column: ci })
        })
    }

    /// Columns of a given table.
    pub fn table_columns(&self, table: TableId) -> impl Iterator<Item = ColumnId> + '_ {
        (0..self.table(table).columns.len()).map(move |ci| ColumnId { table, column: ci })
    }

    /// Whether `col` is the primary key of its table.
    pub fn is_primary_key(&self, col: ColumnId) -> bool {
        self.table(col.table).primary_key == Some(col.column)
    }

    /// Whether `col` participates in any foreign key (either side).
    pub fn is_key_column(&self, col: ColumnId) -> bool {
        self.is_primary_key(col)
            || self.foreign_keys.iter().any(|fk| fk.from == col || fk.to == col)
    }

    /// All foreign keys touching a given table (either direction).
    pub fn foreign_keys_of(&self, table: TableId) -> Vec<ForeignKey> {
        self.foreign_keys
            .iter()
            .copied()
            .filter(|fk| fk.from.table == table || fk.to.table == table)
            .collect()
    }

    /// Basic structural validation: primary key indices in range, FK endpoints exist.
    pub fn validate(&self) -> DbResult<()> {
        for t in &self.tables {
            if let Some(pk) = t.primary_key {
                if pk >= t.columns.len() {
                    return Err(DbError::InvalidQuery(format!(
                        "primary key index {pk} out of range for table `{}`",
                        t.name
                    )));
                }
            }
        }
        for fk in &self.foreign_keys {
            for end in [fk.from, fk.to] {
                if end.table.0 >= self.tables.len()
                    || end.column >= self.tables[end.table.0].columns.len()
                {
                    return Err(DbError::InvalidForeignKey(format!(
                        "foreign key endpoint {end} out of range"
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn movie_schema() -> Schema {
        let mut s = Schema::new("movies");
        s.add_table(TableDef::new(
            "actor",
            vec![
                ColumnDef::number("aid"),
                ColumnDef::text("name"),
                ColumnDef::number("birth_yr"),
                ColumnDef::text("gender"),
            ],
            Some(0),
        ));
        s.add_table(TableDef::new(
            "movies",
            vec![ColumnDef::number("mid"), ColumnDef::text("name"), ColumnDef::number("year")],
            Some(0),
        ));
        s.add_table(TableDef::new(
            "starring",
            vec![ColumnDef::number("aid"), ColumnDef::number("mid")],
            None,
        ));
        s.add_foreign_key("starring", "aid", "actor", "aid").unwrap();
        s.add_foreign_key("starring", "mid", "movies", "mid").unwrap();
        s
    }

    #[test]
    fn counts() {
        let s = movie_schema();
        assert_eq!(s.table_count(), 3);
        assert_eq!(s.column_count(), 9);
        assert_eq!(s.foreign_key_count(), 2);
    }

    #[test]
    fn lookup_by_name_is_case_insensitive() {
        let s = movie_schema();
        let id = s.column_id("Actor", "NAME").unwrap();
        assert_eq!(s.qualified_name(id), "actor.name");
        assert!(s.column_id("actor", "nope").is_err());
        assert!(s.table_id("nope").is_err());
    }

    #[test]
    fn key_column_detection() {
        let s = movie_schema();
        let aid = s.column_id("actor", "aid").unwrap();
        let name = s.column_id("actor", "name").unwrap();
        let s_aid = s.column_id("starring", "aid").unwrap();
        assert!(s.is_primary_key(aid));
        assert!(s.is_key_column(aid));
        assert!(s.is_key_column(s_aid));
        assert!(!s.is_key_column(name));
    }

    #[test]
    fn foreign_key_type_check() {
        let mut s = movie_schema();
        let err = s.add_foreign_key("starring", "aid", "actor", "name");
        assert!(matches!(err, Err(DbError::InvalidForeignKey(_))));
    }

    #[test]
    fn all_columns_enumeration() {
        let s = movie_schema();
        let cols: Vec<_> = s.all_columns().collect();
        assert_eq!(cols.len(), 9);
        assert_eq!(cols[0], ColumnId::new(0, 0));
        assert_eq!(cols[8], ColumnId::new(2, 1));
    }

    #[test]
    fn foreign_keys_of_table() {
        let s = movie_schema();
        let starring = s.table_id("starring").unwrap();
        assert_eq!(s.foreign_keys_of(starring).len(), 2);
        let actor = s.table_id("actor").unwrap();
        assert_eq!(s.foreign_keys_of(actor).len(), 1);
    }

    #[test]
    fn validate_ok_and_bad_fk() {
        let mut s = movie_schema();
        assert!(s.validate().is_ok());
        s.foreign_keys.push(ForeignKey { from: ColumnId::new(9, 0), to: ColumnId::new(0, 0) });
        assert!(s.validate().is_err());
    }
}
