//! Value and data-type model.
//!
//! The Duoquest task scope (paper §2.5) only distinguishes *text* and *number*
//! output columns in table sketch queries, so the engine uses the same two
//! scalar types plus SQL `NULL`.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// Free-form text (SQL `TEXT` / `VARCHAR`).
    Text,
    /// Numeric data (SQL `INTEGER` / `REAL`), represented as `f64`.
    Number,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Text => write!(f, "text"),
            DataType::Number => write!(f, "number"),
        }
    }
}

/// A scalar cell value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// A text value.
    Text(String),
    /// A numeric value.
    Number(f64),
}

impl Value {
    /// Construct a text value.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Text(s.into())
    }

    /// Construct a numeric value.
    pub fn number(n: impl Into<f64>) -> Self {
        Value::Number(n.into())
    }

    /// Construct an integer-valued number.
    pub fn int(n: i64) -> Self {
        Value::Number(n as f64)
    }

    /// The dynamic type of this value, if it is not NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Text(_) => Some(DataType::Text),
            Value::Number(_) => Some(DataType::Number),
        }
    }

    /// Whether the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Return the numeric content if the value is a number.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Return the textual content if the value is text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// SQL-style equality: NULL is never equal to anything (including NULL);
    /// text comparison is case-insensitive to mirror the paper's autocomplete
    /// driven matching of user-provided example cells.
    pub fn sql_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Text(a), Value::Text(b)) => a.eq_ignore_ascii_case(b),
            (Value::Number(a), Value::Number(b)) => {
                (a - b).abs() < f64::EPSILON * a.abs().max(b.abs()).max(1.0)
            }
            _ => false,
        }
    }

    /// SQL-style ordering comparison. Returns `None` if the values are not
    /// comparable (NULLs or mixed types), mirroring three-valued logic where
    /// such comparisons evaluate to UNKNOWN.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Number(a), Value::Number(b)) => a.partial_cmp(b),
            (Value::Text(a), Value::Text(b)) => {
                Some(a.to_ascii_lowercase().cmp(&b.to_ascii_lowercase()))
            }
            _ => None,
        }
    }

    /// Total ordering used for deterministic sorting of result sets:
    /// NULL < numbers < text.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Number(_) => 1,
                Value::Text(_) => 2,
            }
        }
        match (self, other) {
            (Value::Number(a), Value::Number(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            _ => rank(self).cmp(&rank(other)),
        }
    }

    /// SQL `LIKE` with `%` wildcards (case-insensitive). Only meaningful on text.
    pub fn sql_like(&self, pattern: &str) -> bool {
        let Value::Text(s) = self else { return false };
        like_match(&s.to_ascii_lowercase(), &pattern.to_ascii_lowercase())
    }

    /// A canonical key usable for hashing/grouping (folds numbers to a stable
    /// bit representation and lowercases text).
    pub fn group_key(&self) -> String {
        match self {
            Value::Null => "\u{0}null".to_string(),
            Value::Number(n) => format!("n:{}", canonical_f64(*n)),
            Value::Text(s) => format!("t:{}", s.to_ascii_lowercase()),
        }
    }
}

/// Render a float without trailing noise so equal numbers hash identically.
fn canonical_f64(n: f64) -> String {
    if n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// `%`-wildcard pattern matching used for SQL `LIKE`.
fn like_match(s: &str, pattern: &str) -> bool {
    // Split on '%' and greedily match the fragments in order.
    let parts: Vec<&str> = pattern.split('%').collect();
    if parts.len() == 1 {
        return s == pattern;
    }
    let mut pos = 0usize;
    for (i, part) in parts.iter().enumerate() {
        if part.is_empty() {
            continue;
        }
        if i == 0 {
            if !s.starts_with(part) {
                return false;
            }
            pos = part.len();
        } else if i == parts.len() - 1 {
            return s[pos..].ends_with(part);
        } else {
            match s[pos..].find(part) {
                Some(idx) => pos += idx + part.len(),
                None => return false,
            }
        }
    }
    true
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Text(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Value::Number(n) => {
                if *n == n.trunc() && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Text(a), Value::Text(b)) => a == b,
            (Value::Number(a), Value::Number(b)) => a == b || (a.is_nan() && b.is_nan()),
            _ => false,
        }
    }
}

// `PartialEq` above is a total equivalence: NaN equals NaN, so reflexivity
// holds and `Eq` is sound.
impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Text(s) => {
                1u8.hash(state);
                s.hash(state);
            }
            Value::Number(n) => {
                2u8.hash(state);
                // Consistent with `PartialEq`: all NaNs are equal, and
                // -0.0 == 0.0 (adding 0.0 folds -0.0 onto +0.0).
                if n.is_nan() {
                    f64::NAN.to_bits().hash(state);
                } else {
                    (n + 0.0).to_bits().hash(state);
                }
            }
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Number(n as f64)
    }
}

impl From<i32> for Value {
    fn from(n: i32) -> Self {
        Value::Number(n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_type_display() {
        assert_eq!(DataType::Text.to_string(), "text");
        assert_eq!(DataType::Number.to_string(), "number");
    }

    #[test]
    fn value_constructors_and_types() {
        assert_eq!(Value::text("abc").data_type(), Some(DataType::Text));
        assert_eq!(Value::int(3).data_type(), Some(DataType::Number));
        assert_eq!(Value::Null.data_type(), None);
        assert!(Value::Null.is_null());
    }

    #[test]
    fn sql_eq_is_case_insensitive_for_text() {
        assert!(Value::text("Tom Hanks").sql_eq(&Value::text("tom hanks")));
        assert!(!Value::text("Tom").sql_eq(&Value::text("Tim")));
    }

    #[test]
    fn sql_eq_null_never_equal() {
        assert!(!Value::Null.sql_eq(&Value::Null));
        assert!(!Value::Null.sql_eq(&Value::int(1)));
    }

    #[test]
    fn sql_cmp_numbers_and_text() {
        assert_eq!(Value::int(1994).sql_cmp(&Value::int(1995)), Some(Ordering::Less));
        assert_eq!(Value::text("b").sql_cmp(&Value::text("A")), Some(Ordering::Greater));
        assert_eq!(Value::int(1).sql_cmp(&Value::text("a")), None);
        assert_eq!(Value::Null.sql_cmp(&Value::int(1)), None);
    }

    #[test]
    fn like_matching() {
        assert!(Value::text("SIGMOD 2020").sql_like("%sigmod%"));
        assert!(Value::text("SIGMOD 2020").sql_like("sigmod%"));
        assert!(Value::text("SIGMOD 2020").sql_like("%2020"));
        assert!(!Value::text("VLDB 2020").sql_like("%sigmod%"));
        assert!(Value::text("abc").sql_like("abc"));
        assert!(!Value::int(1956).sql_like("%1956%"));
    }

    #[test]
    fn group_keys_fold_equal_values() {
        assert_eq!(Value::int(3).group_key(), Value::Number(3.0).group_key());
        assert_eq!(Value::text("A").group_key(), Value::text("a").group_key());
        assert_ne!(Value::text("a").group_key(), Value::Null.group_key());
    }

    #[test]
    fn total_cmp_orders_across_types() {
        let mut vals = [Value::text("z"), Value::Null, Value::int(4), Value::int(2)];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::int(2));
        assert_eq!(vals[3], Value::text("z"));
    }

    #[test]
    fn display_quotes_text() {
        assert_eq!(Value::text("O'Brien").to_string(), "'O''Brien'");
        assert_eq!(Value::int(5).to_string(), "5");
        assert_eq!(Value::Number(2.5).to_string(), "2.5");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from("x"), Value::text("x"));
        assert_eq!(Value::from(5i64), Value::int(5));
        assert_eq!(Value::from(5i32), Value::int(5));
        assert_eq!(Value::from(1.5f64), Value::Number(1.5));
    }
}
