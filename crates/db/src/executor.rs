//! Streaming operator execution of [`SelectSpec`] queries against a
//! [`Database`].
//!
//! # The operator pipeline
//!
//! A query runs as a pull-based pipeline of textbook SPJA operators (the full
//! prose version of this section, with the limit-pushdown rules and the
//! determinism contract, lives in `docs/EXECUTOR.md`):
//!
//! ```text
//!   scan(T₀) ──► ⋈ hash(T₁) ──► … ──► ⋈ hash(Tₙ) ──► σ WHERE
//!        │ (probe side streamed;  build sides hashed up front)
//!        ▼
//!   ┌─ ungrouped ─────────────────────┐  ┌─ grouped ──────────────────────┐
//!   │ π project → DISTINCT → LIMIT k  │  │ γ group/agg → HAVING → π → sort│
//!   │ (stops pulling at k survivors)  │  │ (drains the full input)        │
//!   └─────────────────────────────────┘  └────────────────────────────────┘
//! ```
//!
//! Two physical strategies implement that plan:
//!
//! * **Streaming** — the probe side of the join chain is pulled row by row
//!   and each operator forwards rows as they survive, so a `LIMIT k` query
//!   (most prominently the verifier's `SELECT … LIMIT 1` probes) stops
//!   scanning as soon as `k` output rows exist. **Limit pushdown** applies
//!   when the query has no aggregation and either no `ORDER BY` or an
//!   `ORDER BY` that the pipeline order already satisfies (the sort key is a
//!   column of the probe-side table whose stored values are already sorted
//!   the requested way — see [`Database::column_is_sorted`]).
//! * **Materializing** — grouped, sorted-by-unsorted-columns, or unlimited
//!   queries drain the pipeline into an intermediate relation. Large joins
//!   are evaluated as **partitioned parallel hash joins**: the build side is
//!   distributed across `join_partitions` hash partitions in one sequential
//!   pass, the probe side is split into contiguous chunks probed on scoped
//!   threads, and
//!   chunk outputs are concatenated in chunk (i.e. original row) order — so
//!   the produced row order is byte-identical to the single-threaded join
//!   for every partition count. Below [`ExecOptions::parallel_join_threshold`]
//!   probe rows the single-threaded join is used outright.
//!
//! # Index access
//!
//! When the database has built its ordered secondary indexes
//! ([`crate::table_index::TableIndex`]) and [`ExecOptions::index_access`] is
//! on, both strategies substitute index structures for scans (the full
//! selection rules live in `docs/EXECUTOR.md`):
//!
//! * **Index-nested-loop joins** borrow a build column's prebuilt match
//!   lists instead of hashing the build table per execution.
//! * **Range/point restrictions** turn indexed literal predicates into
//!   candidate row lists (always supersets; the WHERE filter re-checks), so
//!   scans and build passes touch only candidates.
//! * **Ordered index scans** stream `ORDER BY c LIMIT k` from the column's
//!   sorted run for any indexed column, generalizing the presorted-storage
//!   case.
//! * **Selectivity-driven planning** orders join steps most-selective-first
//!   when provably order-safe, and bails the execution the moment a build
//!   side, an intermediate, or the planned probe itself is provably empty.
//!
//! # Determinism contract
//!
//! For a fixed database and spec, [`execute`] and [`execute_with`] produce
//! the same [`ResultSet`] — bit for bit — regardless of `join_partitions`,
//! the parallel threshold, whether the streaming or materializing strategy
//! ran, or whether index access paths were taken. Higher layers (candidate
//! emission, the probe memo cache) rely on this.
//!
//! # Observability
//!
//! [`execute_with`] reports [`ExecMetrics`]: `rows_scanned` counts base-table
//! rows pulled plus join rows produced, `rows_short_circuited` counts
//! probe-side rows the pipeline never had to pull because the limit was
//! already satisfied, and `exact` says whether the produced rows are the
//! spec's complete result (only a caller-supplied [`ExecOptions::row_budget`]
//! can truncate it). Index paths report `index_lookups`, `rows_via_index`
//! and `probes_bailed_empty`. The verifier aggregates these per synthesis
//! run into `EnumerationStats`.

use crate::database::{Database, Row};
use crate::error::{DbError, DbResult};
use crate::query::{
    AggFunc, CmpOp, LogicalOp, OrderKey, OrderSpec, Predicate, SelectItem, SelectSpec,
};
use crate::schema::{ColumnId, TableId};
use crate::table_index::ColumnIndex;
use crate::types::{DataType, Value};
use std::cell::Cell;
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};

/// The result of executing a query: column headers plus rows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResultSet {
    /// Output column names (qualified, e.g. `actor.name` or `COUNT(*)`).
    pub columns: Vec<String>,
    /// Output column types.
    pub types: Vec<DataType>,
    /// Output rows.
    pub rows: Vec<Row>,
}

impl ResultSet {
    /// Number of output rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the result set is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Values of one output column.
    pub fn column(&self, idx: usize) -> impl Iterator<Item = &Value> {
        self.rows.iter().map(move |r| &r.0[idx])
    }

    /// Render the result set as a compact ASCII table (used by the examples).
    /// Cells are written straight into the output buffer; no intermediate
    /// per-row string vectors are allocated.
    pub fn to_table_string(&self, max_rows: usize) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(" | "));
        let header_len = out.len();
        out.push('\n');
        out.push_str(&"-".repeat(header_len.max(4)));
        out.push('\n');
        for row in self.rows.iter().take(max_rows) {
            for (i, v) in row.0.iter().enumerate() {
                if i > 0 {
                    out.push_str(" | ");
                }
                let _ = write!(out, "{v}");
            }
            out.push('\n');
        }
        if self.rows.len() > max_rows {
            let _ = writeln!(out, "... ({} more rows)", self.rows.len() - max_rows);
        }
        out
    }
}

/// Default probe-side row count below which a join is evaluated
/// single-threaded (spawning scoped threads costs more than it saves).
pub const PARALLEL_JOIN_THRESHOLD: usize = 4096;

/// Physical execution knobs for [`execute_with`]. [`execute`] uses the
/// database's defaults ([`Database::exec_options`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Stop producing output rows beyond this budget, even if the spec has a
    /// larger (or no) `LIMIT`. The result is then a prefix of the spec's
    /// result and [`ExecMetrics::exact`] reports `false` when rows were cut.
    pub row_budget: Option<usize>,
    /// Allow the streaming strategy to stop pulling input once the effective
    /// limit is satisfied. Disabling this forces the materializing strategy
    /// (useful as the "old executor" baseline in benches and tests).
    pub limit_pushdown: bool,
    /// Number of hash partitions (and scoped threads) for large
    /// materialized joins. `1` disables parallelism.
    pub join_partitions: usize,
    /// Probe-side row count at which the partitioned parallel join kicks in.
    pub parallel_join_threshold: usize,
    /// Allow index-backed access paths (index-nested-loop joins, index range
    /// scans, ordered index scans and selectivity-driven join planning) when
    /// the database has built its secondary indexes. Results are
    /// byte-identical either way (see the determinism contract); disabling
    /// this forces the pure scan pipeline as an A/B baseline.
    pub index_access: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            row_budget: None,
            limit_pushdown: true,
            join_partitions: 1,
            parallel_join_threshold: PARALLEL_JOIN_THRESHOLD,
            index_access: true,
        }
    }
}

/// Observability counters for one execution (see the module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecMetrics {
    /// Base-table rows pulled into the pipeline plus join rows produced.
    pub rows_scanned: u64,
    /// Probe-side rows left unscanned because the limit was already satisfied.
    pub rows_short_circuited: u64,
    /// Whether the produced rows are known to be the spec's complete result.
    /// Only an [`ExecOptions::row_budget`] can make this `false`, and then
    /// pessimistically: a streaming run that stops *at* the budget reports
    /// `false` without checking whether the input happened to be exhausted
    /// exactly there (probing on would forfeit the early termination).
    pub exact: bool,
    /// Whether the streaming (early-terminating) strategy ran.
    pub streamed: bool,
    /// Secondary-index lookups performed: candidate computations for indexed
    /// literal predicates during planning, one per probe row of an
    /// index-nested-loop join step, and one per ordered-index-scan setup.
    pub index_lookups: u64,
    /// Rows that entered the pipeline through an index access path: ordered
    /// index scans, candidate-restricted scans and builds, and
    /// index-nested-loop match expansions.
    pub rows_via_index: u64,
    /// 1 when this execution was cut short because the planner (or a join
    /// step) proved the remaining work empty: an empty joined table, an
    /// indexed predicate with no candidates, an empty build side, or an
    /// empty join intermediate.
    pub probes_bailed_empty: u64,
}

/// A [`ResultSet`] together with the [`ExecMetrics`] of producing it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExecOutcome {
    /// The produced rows.
    pub result: ResultSet,
    /// How they were produced.
    pub metrics: ExecMetrics,
}

/// Execute a query against a database with the database's default options.
pub fn execute(db: &Database, spec: &SelectSpec) -> DbResult<ResultSet> {
    Ok(execute_with(db, spec, &db.exec_options())?.result)
}

/// Execute a query with explicit physical options, reporting
/// [`ExecMetrics`] alongside the rows.
///
/// This is the streaming entry point: a `LIMIT k` query (or an external
/// [`ExecOptions::row_budget`]) stops scanning as soon as `k` rows survive.
///
/// ```
/// use duoquest_db::{
///     execute_with, ColumnDef, Database, ExecOptions, JoinTree, Schema, SelectItem,
///     SelectSpec, TableDef, Value,
/// };
///
/// let mut schema = Schema::new("demo");
/// schema.add_table(TableDef::new("t", vec![ColumnDef::number("id")], Some(0)));
/// let mut db = Database::new(schema).unwrap();
/// db.insert_all("t", (0..100).map(|i| vec![Value::int(i)])).unwrap();
/// db.rebuild_index();
///
/// let spec = SelectSpec {
///     select: vec![SelectItem::column(db.schema().column_id("t", "id").unwrap())],
///     join: JoinTree::single(db.schema().table_id("t").unwrap()),
///     limit: Some(1),
///     ..Default::default()
/// };
/// let out = execute_with(&db, &spec, &ExecOptions::default()).unwrap();
/// assert_eq!(out.result.len(), 1);
/// assert!(out.metrics.exact, "LIMIT is the spec's own semantics");
/// assert!(out.metrics.rows_scanned < 100, "stopped after the first row");
/// assert_eq!(out.metrics.rows_short_circuited, 99);
/// ```
pub fn execute_with(db: &Database, spec: &SelectSpec, opts: &ExecOptions) -> DbResult<ExecOutcome> {
    validate(db, spec)?;
    let access = IndexAccess::plan(db, spec, opts);
    let plan = plan_joins(db, spec, &access)?;
    if access.provably_empty(db, spec) {
        return run_empty(db, spec, plan, opts, &access);
    }
    match streaming_cap(db, spec, opts, &plan) {
        Some((cap, order)) => run_streaming(db, spec, &plan, cap, order, &access),
        None => run_materialized(db, spec, plan, opts, &access),
    }
}

/// Index-derived planning facts for one execution: whether index access is
/// on, per-table candidate row lists implied by indexed literal predicates,
/// and the lookups spent computing them.
struct IndexAccess {
    /// Index access paths are allowed ([`ExecOptions::index_access`]).
    enabled: bool,
    /// Table → ascending candidate row ids: a **superset** of the table's
    /// rows that can pass the WHERE clause. [`row_passes`] still evaluates
    /// every predicate on every surviving row, so scanning (or hashing)
    /// candidates instead of the full table is output-invariant — the index
    /// only removes rows that could never survive. Only populated when
    /// predicates combine conjunctively (AND, or a single predicate).
    restrictions: HashMap<TableId, Vec<usize>>,
    /// Index lookups performed while planning.
    lookups: u64,
}

impl IndexAccess {
    fn disabled() -> IndexAccess {
        IndexAccess { enabled: false, restrictions: HashMap::new(), lookups: 0 }
    }

    /// Derive candidate restrictions from the spec's indexed literal
    /// predicates. Must run after [`validate`] (predicates have columns).
    fn plan(db: &Database, spec: &SelectSpec, opts: &ExecOptions) -> IndexAccess {
        if !opts.index_access {
            return IndexAccess::disabled();
        }
        let mut access = IndexAccess { enabled: true, ..IndexAccess::disabled() };
        // Under OR, a row failing one predicate may still pass another, so a
        // per-predicate candidate list restricts nothing.
        if spec.predicate_op != LogicalOp::And && spec.predicates.len() > 1 {
            return access;
        }
        for pred in &spec.predicates {
            let col = pred.col.expect("validated: WHERE predicate has a column");
            let Some(cands) = predicate_candidates(db, col, pred) else { continue };
            access.lookups += 1;
            // Keep the most selective list per table; any one is a valid
            // superset on its own.
            match access.restrictions.entry(col.table) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    if cands.len() < e.get().len() {
                        e.insert(cands);
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(cands);
                }
            }
        }
        access
    }

    /// Whether the planner can prove the joined relation empty before
    /// touching any rows: a joined table has no rows, or a conjunctive
    /// indexed predicate admits no candidates.
    fn provably_empty(&self, db: &Database, spec: &SelectSpec) -> bool {
        self.enabled
            && (spec.join.tables.iter().any(|&t| db.table_data(t).rows.is_empty())
                || self.restrictions.values().any(|c| c.is_empty()))
    }
}

/// Ascending row ids of `col`'s table that over-approximate the rows
/// matching `pred`, or `None` when the predicate is not index-answerable.
///
/// Supersets, never exact sets, are required (the WHERE filter re-checks):
///
/// * Text equality is exact — [`Value::group_key`] lowercases ASCII exactly
///   like [`Value::sql_eq`] compares.
/// * Numeric equality is epsilon-relative in [`Value::sql_eq`], so the index
///   serves a `±δ` range with `δ = 4ε(|v|+1)`, which strictly contains the
///   sql_eq tolerance band `|a-v| < ε·max(|a|,|v|,1)` including the rounding
///   of the computed bounds.
/// * Numeric ranges use [`Predicate::numeric_range_bounds`]; NULLs sort
///   before every number, so they never enter a numeric range slice.
/// * NULL and non-finite equality constants match nothing under
///   [`Value::sql_eq`], giving an empty (still exact) candidate set.
fn predicate_candidates(db: &Database, col: ColumnId, pred: &Predicate) -> Option<Vec<usize>> {
    let idx = db.column_index(col)?;
    let rows = &db.table_data(col.table).rows;
    match pred.op {
        CmpOp::Eq => match &pred.value {
            Value::Text(_) => Some(idx.lookup(&pred.value).to_vec()),
            Value::Null => Some(Vec::new()),
            Value::Number(v) if !v.is_finite() => Some(Vec::new()),
            Value::Number(v) => {
                if !idx.can_order() {
                    return None;
                }
                let delta = 4.0 * f64::EPSILON * (v.abs() + 1.0);
                let mut cands = idx
                    .range(
                        rows,
                        col.column,
                        &Value::Number(v - delta),
                        true,
                        &Value::Number(v + delta),
                        true,
                    )
                    .to_vec();
                cands.sort_unstable();
                Some(cands)
            }
        },
        _ => {
            let (lo, lo_incl, hi, hi_incl) = pred.numeric_range_bounds()?;
            if !idx.can_order() {
                return None;
            }
            let mut cands = idx
                .range(rows, col.column, &Value::Number(lo), lo_incl, &Value::Number(hi), hi_incl)
                .to_vec();
            cands.sort_unstable();
            Some(cands)
        }
    }
}

/// The joined intermediate relation: a mapping from column ids to positions in
/// the combined row, plus the combined rows themselves.
struct Joined {
    col_pos: HashMap<ColumnId, usize>,
    rows: Vec<Vec<Value>>,
}

/// One output record before distinct/sort/limit: projected values plus the sort key.
struct Record {
    projected: Vec<Value>,
    order_key: Option<Value>,
}

fn validate(db: &Database, spec: &SelectSpec) -> DbResult<()> {
    if spec.select.is_empty() {
        return Err(DbError::InvalidQuery("SELECT clause is empty".into()));
    }
    if spec.join.tables.is_empty() {
        return Err(DbError::InvalidQuery("FROM clause is empty".into()));
    }
    if !spec.join.is_connected() {
        return Err(DbError::DisconnectedJoin("join tree is not connected".into()));
    }
    for col in spec.referenced_columns() {
        if !spec.join.contains(col.table) {
            return Err(DbError::InvalidQuery(format!(
                "column {} is not covered by the FROM clause",
                db.schema().qualified_name(col)
            )));
        }
    }
    for p in &spec.predicates {
        if p.is_aggregate() {
            return Err(DbError::InvalidQuery(
                "aggregated predicate in WHERE clause (belongs in HAVING)".into(),
            ));
        }
        if p.col.is_none() {
            return Err(DbError::InvalidQuery("WHERE predicate without a column".into()));
        }
    }
    for h in &spec.having {
        if !h.is_aggregate() {
            return Err(DbError::InvalidQuery("HAVING predicate must be aggregated".into()));
        }
    }
    for item in &spec.select {
        if item.agg.is_none() && item.col.is_none() {
            return Err(DbError::InvalidQuery(
                "SELECT item with neither aggregate nor column".into(),
            ));
        }
    }
    Ok(())
}

/// One hash-join step of the plan: probe the combined row at `probe_pos`
/// against a hash table over `build_col` of `table`.
struct JoinStep {
    table: TableId,
    probe_pos: usize,
    build_col: usize,
}

/// The logical join plan shared by both physical strategies, so their row
/// order is identical by construction: seed with the first FROM table, then
/// repeatedly take a remaining edge connecting a joined table to an unjoined
/// one — the first such edge canonically, or the most selective one when the
/// greedy reorder is provably order-safe (see [`plan_joins`]).
struct JoinPlan {
    first: TableId,
    col_pos: HashMap<ColumnId, usize>,
    steps: Vec<JoinStep>,
}

/// Whether greedy most-selective-first step ordering preserves the emitted
/// row order. Each join step expands every probe row in place, so a step
/// whose build key is unique contributes 0 or 1 match and the output order
/// stays the probe order however the steps are arranged; with at most one
/// fanning-out (non-unique) step, the order is the probe order refined by
/// that single step's ascending match lists — again arrangement-invariant.
/// Two or more fanning steps interleave differently per arrangement, so the
/// canonical order must be kept.
///
/// The build side of each edge (its endpoint farther from `first`) is fixed
/// by the tree structure, independent of step order, so it can be determined
/// up front by flooding outward from `first`.
fn greedy_reorder_is_order_safe(db: &Database, spec: &SelectSpec, first: TableId) -> bool {
    let mut reached: Vec<TableId> = vec![first];
    let mut oriented: Vec<Option<TableId>> = vec![None; spec.join.edges.len()];
    let mut progress = true;
    while progress {
        progress = false;
        for (ei, e) in spec.join.edges.iter().enumerate() {
            if oriented[ei].is_some() {
                continue;
            }
            let (a, b) = e.tables();
            if reached.contains(&a) != reached.contains(&b) {
                let build = if reached.contains(&a) { b } else { a };
                oriented[ei] = Some(build);
                reached.push(build);
                progress = true;
            }
        }
    }
    let non_unique = spec
        .join
        .edges
        .iter()
        .enumerate()
        .filter(|(ei, e)| match oriented[*ei] {
            Some(build) => {
                let bcol = if e.fk.from.table == build { e.fk.from } else { e.fk.to };
                !db.column_index(bcol).map(ColumnIndex::is_unique).unwrap_or(false)
            }
            // Unoriented (disconnected or cyclic) edges: be conservative.
            None => true,
        })
        .count();
    non_unique <= 1
}

fn plan_joins(db: &Database, spec: &SelectSpec, access: &IndexAccess) -> DbResult<JoinPlan> {
    let schema = db.schema();
    let mut col_pos: HashMap<ColumnId, usize> = HashMap::new();

    let first = spec.join.tables[0];
    for ci in 0..schema.table(first).columns.len() {
        col_pos.insert(ColumnId { table: first, column: ci }, ci);
    }

    let greedy = access.enabled
        && spec.join.edges.len() > 1
        && greedy_reorder_is_order_safe(db, spec, first);

    let mut steps = Vec::new();
    let mut joined_tables = vec![first];
    let mut remaining_edges = spec.join.edges.clone();

    while joined_tables.len() < spec.join.tables.len() {
        let mut connecting = remaining_edges.iter().enumerate().filter(|(_, e)| {
            let (a, b) = e.tables();
            joined_tables.contains(&a) != joined_tables.contains(&b)
        });
        let pos = if greedy {
            // Most selective (smallest estimated build side) first; the
            // estimate is the restriction candidate count when an indexed
            // predicate pre-selects the table, its row count otherwise.
            // `min_by_key` keeps the first of equals, so ties fall back to
            // the canonical edge order.
            connecting.min_by_key(|(_, e)| {
                let (a, b) = e.tables();
                let build = if joined_tables.contains(&a) { b } else { a };
                access
                    .restrictions
                    .get(&build)
                    .map(Vec::len)
                    .unwrap_or_else(|| db.table_data(build).rows.len())
            })
        } else {
            connecting.next()
        }
        .map(|(pos, _)| pos);
        let Some(pos) = pos else {
            return Err(DbError::DisconnectedJoin(
                "no join edge connects the remaining tables".into(),
            ));
        };
        let edge = remaining_edges.remove(pos);
        let (a, b) = edge.tables();
        let (new_table, joined_col, new_col) = if joined_tables.contains(&a) {
            (
                b,
                if edge.fk.from.table == a { edge.fk.from } else { edge.fk.to },
                if edge.fk.from.table == b { edge.fk.from } else { edge.fk.to },
            )
        } else {
            (
                a,
                if edge.fk.from.table == b { edge.fk.from } else { edge.fk.to },
                if edge.fk.from.table == a { edge.fk.from } else { edge.fk.to },
            )
        };

        let offset = col_pos.len();
        for ci in 0..schema.table(new_table).columns.len() {
            col_pos.insert(ColumnId { table: new_table, column: ci }, offset + ci);
        }
        steps.push(JoinStep {
            table: new_table,
            probe_pos: col_pos[&joined_col],
            build_col: new_col.column,
        });
        joined_tables.push(new_table);
    }

    Ok(JoinPlan { first, col_pos, steps })
}

/// How the streaming strategy iterates the first (probe-side) table.
enum FirstOrder {
    /// Plain storage order: no ORDER BY, or one the stored order already
    /// satisfies.
    Storage,
    /// Ordered index scan: walk the column's sorted run so an
    /// `ORDER BY col LIMIT k` on an indexed-but-unsorted column still
    /// streams. The run is ordered by `(value, row id)` — exactly what the
    /// materializing strategy's stable sort produces — so emission is
    /// byte-identical to materialize-and-sort.
    Index {
        /// The ORDER BY column (a column of the first table).
        col: ColumnId,
        /// Walk the run backwards (equal-value ties still ascend).
        desc: bool,
    },
}

/// Number of output rows after which the streaming pipeline may stop pulling
/// (plus how to iterate the probe side), or `None` when the query must be
/// fully materialized (aggregation, an `ORDER BY` neither the pipeline order
/// nor an ordered index satisfies, no limit at all, or pushdown disabled).
fn streaming_cap(
    db: &Database,
    spec: &SelectSpec,
    opts: &ExecOptions,
    plan: &JoinPlan,
) -> Option<(usize, FirstOrder)> {
    if !opts.limit_pushdown {
        return None;
    }
    if spec.has_aggregates() || !spec.group_by.is_empty() {
        return None;
    }
    let cap = match (spec.limit, opts.row_budget) {
        (Some(l), Some(b)) => l.min(b),
        (Some(l), None) => l,
        (None, Some(b)) => b,
        (None, None) => return None,
    };
    let mut order = FirstOrder::Storage;
    if let Some(OrderSpec { key, desc }) = spec.order_by {
        // The sort is a no-op exactly when the sort key is a probe-side
        // column whose iteration order already satisfies it: join steps
        // expand each probe row in place and the final sort is stable, so
        // the pipeline order equals the sorted order byte for byte. That
        // holds for a physically presorted column — and for any indexed
        // column by walking its sorted run instead of the storage.
        let OrderKey::Column(col) = key else { return None };
        if col.table != plan.first {
            return None;
        }
        if !db.column_is_sorted(col, desc) {
            let indexed = opts.index_access
                && db.column_index(col).map(ColumnIndex::can_order).unwrap_or(false);
            if !indexed {
                return None;
            }
            order = FirstOrder::Index { col, desc };
        }
    }
    Some((cap, order))
}

/// Compound grouping/dedup key over a sequence of values, used identically
/// by the streaming DISTINCT, the batch DISTINCT of [`finalize`] and the
/// GROUP BY partitioning — one derivation, so the strategies cannot drift.
fn group_key_of<'v>(values: impl Iterator<Item = &'v Value>) -> String {
    values.map(Value::group_key).collect::<Vec<_>>().join("\u{1}")
}

/// Distribute one join step's build side into `partitions` hash tables (a
/// row's partition is the hash of its join key, so all rows of one key land
/// in one partition in row order). Both the single-map sequential join
/// ([`build_hash`]) and the partitioned parallel join feed from this, so the
/// NULL/key semantics of the build side cannot drift between them.
fn build_hash_partitioned(
    rows: &[Row],
    build_col: usize,
    partitions: usize,
) -> Vec<HashMap<String, Vec<usize>>> {
    let mut maps: Vec<HashMap<String, Vec<usize>>> =
        (0..partitions).map(|_| HashMap::new()).collect();
    for (ri, row) in rows.iter().enumerate() {
        let v = &row.0[build_col];
        if !v.is_null() {
            let key = v.group_key();
            let idx = if partitions == 1 { 0 } else { key_partition(&key, partitions) };
            maps[idx].entry(key).or_default().push(ri);
        }
    }
    maps
}

/// Build the single hash table over one join step's build column.
fn build_hash(rows: &[Row], build_col: usize) -> HashMap<String, Vec<usize>> {
    build_hash_partitioned(rows, build_col, 1).pop().expect("one partition requested")
}

/// Build a hash table over only the `cands` rows (ascending row ids) of one
/// join step's build column. Because the candidates ascend, each key's match
/// list is a subsequence of the full [`build_hash`] list — excluded rows are
/// exactly those an indexed predicate proved unable to pass WHERE, so
/// probing this map changes nothing the filter would not remove.
fn build_hash_filtered(
    rows: &[Row],
    build_col: usize,
    cands: &[usize],
) -> HashMap<String, Vec<usize>> {
    let mut map: HashMap<String, Vec<usize>> = HashMap::new();
    for &ri in cands {
        let v = &rows[ri].0[build_col];
        if !v.is_null() {
            map.entry(v.group_key()).or_default().push(ri);
        }
    }
    map
}

/// The tail of the streaming pipeline: WHERE filter, projection, DISTINCT
/// and the output cap, fed one (borrowed) combined row at a time.
struct StreamSink<'a> {
    spec: &'a SelectSpec,
    col_pos: &'a HashMap<ColumnId, usize>,
    /// Plain projection positions (streaming never runs aggregated queries).
    proj: Vec<usize>,
    seen: HashSet<String>,
    rows_out: Vec<Row>,
    cap: usize,
}

impl StreamSink<'_> {
    /// Offer one combined row; returns `false` once the cap is reached and
    /// the pipeline must stop pulling.
    fn offer(&mut self, row: &[Value]) -> bool {
        if !row_passes(self.spec, self.col_pos, row) {
            return true;
        }
        let projected: Vec<Value> = self.proj.iter().map(|&p| row[p].clone()).collect();
        if self.spec.distinct && !self.seen.insert(group_key_of(projected.iter())) {
            return true;
        }
        self.rows_out.push(Row(projected));
        self.rows_out.len() < self.cap
    }
}

/// One streaming join step's build side: borrowed straight from a column
/// index (index-nested-loop join — no build pass at all) or hashed for this
/// execution. Both hold `group_key → ascending row ids`, NULLs excluded, so
/// probing either emits identical match lists.
enum StepHash<'h> {
    Borrowed(&'h HashMap<String, Vec<usize>>),
    Owned(HashMap<String, Vec<usize>>),
}

impl StepHash<'_> {
    fn map(&self) -> &HashMap<String, Vec<usize>> {
        match self {
            StepHash::Borrowed(m) => m,
            StepHash::Owned(m) => m,
        }
    }
}

/// Streaming strategy: pull probe rows one at a time through the join chain,
/// WHERE filter, projection and DISTINCT, stopping at `cap` survivors.
fn run_streaming(
    db: &Database,
    spec: &SelectSpec,
    plan: &JoinPlan,
    cap: usize,
    order: FirstOrder,
    access: &IndexAccess,
) -> DbResult<ExecOutcome> {
    let (columns, types) = headers(db, spec)?;

    let mut sink = StreamSink {
        spec,
        col_pos: &plan.col_pos,
        proj: spec
            .select
            .iter()
            .map(|item| plan.col_pos[&item.col.expect("validated: plain projection has a column")])
            .collect(),
        seen: HashSet::new(),
        rows_out: Vec::new(),
        cap,
    };

    let first_rows = &db.table_data(plan.first).rows;

    // First-table iteration: the ordered index scan when the ORDER BY asks
    // for it, the ascending restriction candidates when an indexed literal
    // predicate pre-selects rows (candidate order equals storage order, so
    // emission is unchanged), and a plain scan otherwise.
    let restriction = match order {
        FirstOrder::Storage => access.restrictions.get(&plan.first),
        FirstOrder::Index { .. } => None,
    };
    let mut setup_lookups: u64 = 0;
    let via_first = restriction.is_some() || matches!(order, FirstOrder::Index { .. });
    let first_iter: Box<dyn Iterator<Item = usize> + '_> = match order {
        FirstOrder::Index { col, desc } => {
            setup_lookups += 1;
            let idx = db.column_index(col).expect("streaming_cap checked the index");
            if desc {
                Box::new(idx.ordered_desc(first_rows, col.column))
            } else {
                Box::new(idx.ordered().iter().copied())
            }
        }
        FirstOrder::Storage => match restriction {
            Some(cands) => Box::new(cands.iter().copied()),
            None => Box::new(0..first_rows.len()),
        },
    };
    let first_len = restriction.map(Vec::len).unwrap_or(first_rows.len()) as u64;

    let mut build_scanned: u64 = 0;
    let mut first_scanned_n: u64 = 0;
    let mut produced_n: u64 = 0;
    let mut via_index_n: u64 = 0;
    let mut lookups_n: u64 = 0;
    let mut bailed = false;
    let mut stopped_early = cap == 0 && first_len > 0;

    if cap > 0 && plan.steps.is_empty() {
        // Zero-join fast path (the dominant single-table probe shape):
        // filter and project straight from the borrowed storage rows — no
        // full-row clone ever happens, only the projected cells are copied.
        for ri in first_iter {
            first_scanned_n += 1;
            if via_first {
                via_index_n += 1;
            }
            if !sink.offer(&first_rows[ri].0) {
                stopped_early = true;
                break;
            }
        }
    } else if cap > 0 {
        // Build sides: borrow the column index's prebuilt match lists when
        // the build key is indexed, hash only the restriction candidates
        // when an indexed predicate pre-selects the build table, and hash
        // the full table otherwise. An empty build side proves the join
        // output empty before any probe row is pulled.
        let mut hashes: Vec<StepHash<'_>> = Vec::with_capacity(plan.steps.len());
        for step in &plan.steps {
            let build_rows = &db.table_data(step.table).rows;
            let build_cid = ColumnId { table: step.table, column: step.build_col };
            let hash = if let Some(cands) = access.restrictions.get(&step.table) {
                build_scanned += cands.len() as u64;
                via_index_n += cands.len() as u64;
                StepHash::Owned(build_hash_filtered(build_rows, step.build_col, cands))
            } else if let Some(idx) = if access.enabled { db.column_index(build_cid) } else { None }
            {
                StepHash::Borrowed(idx.match_lists())
            } else {
                build_scanned += build_rows.len() as u64;
                StepHash::Owned(build_hash(build_rows, step.build_col))
            };
            if access.enabled && hash.map().is_empty() {
                bailed = true;
                break;
            }
            hashes.push(hash);
        }

        if !bailed {
            let first_scanned = Cell::new(0u64);
            let produced = Cell::new(0u64);
            let lookups = Cell::new(0u64);
            let via_index = Cell::new(0u64);
            let fs = &first_scanned;
            let vi = &via_index;
            let mut stream: Box<dyn Iterator<Item = Vec<Value>> + '_> =
                Box::new(first_iter.map(move |ri| {
                    fs.set(fs.get() + 1);
                    if via_first {
                        vi.set(vi.get() + 1);
                    }
                    first_rows[ri].0.clone()
                }));
            for (step, hash) in plan.steps.iter().zip(hashes) {
                let build_rows = &db.table_data(step.table).rows;
                let probe_pos = step.probe_pos;
                let pr = &produced;
                let lk = &lookups;
                let vi = &via_index;
                let inlj = matches!(hash, StepHash::Borrowed(_));
                stream = Box::new(stream.flat_map(move |row| {
                    let mut out: Vec<Vec<Value>> = Vec::new();
                    expand_probe_row(row, hash.map(), build_rows, probe_pos, &mut out);
                    if inlj {
                        lk.set(lk.get() + 1);
                        vi.set(vi.get() + out.len() as u64);
                    }
                    pr.set(pr.get() + out.len() as u64);
                    out
                }));
            }
            for row in &mut stream {
                if !sink.offer(&row) {
                    stopped_early = true;
                    break;
                }
            }
            drop(stream);
            first_scanned_n = first_scanned.get();
            produced_n = produced.get();
            lookups_n = lookups.get();
            via_index_n += via_index.get();
        }
    }

    // Stopping at the spec's own LIMIT is the spec's semantics; only a
    // tighter caller budget makes the result a (possibly) truncated prefix.
    // An empty-build bail is the complete (empty) result, hence exact.
    let exact = bailed || !stopped_early || spec.limit == Some(cap);
    let metrics = ExecMetrics {
        rows_scanned: build_scanned + first_scanned_n + produced_n,
        rows_short_circuited: if bailed {
            first_len
        } else if stopped_early {
            first_len.saturating_sub(first_scanned_n)
        } else {
            0
        },
        exact,
        streamed: true,
        index_lookups: access.lookups + setup_lookups + lookups_n,
        rows_via_index: via_index_n,
        probes_bailed_empty: u64::from(bailed),
    };
    Ok(ExecOutcome { result: ResultSet { columns, types, rows: sink.rows_out }, metrics })
}

/// Materializing strategy: evaluate the join chain into an intermediate
/// relation (with partitioned parallel hash joins above the threshold and
/// index-backed build sides where available), then filter, group/aggregate,
/// project, sort and limit as one batch.
fn run_materialized(
    db: &Database,
    spec: &SelectSpec,
    plan: JoinPlan,
    opts: &ExecOptions,
    access: &IndexAccess,
) -> DbResult<ExecOutcome> {
    let mut scanned: u64 = 0;
    let mut lookups: u64 = 0;
    let mut via_index: u64 = 0;
    let mut bailed = false;

    let first_rows = &db.table_data(plan.first).rows;
    let mut rows: Vec<Vec<Value>> = match access.restrictions.get(&plan.first) {
        Some(cands) => {
            // Candidate-restricted scan: cands ascend, so the intermediate
            // keeps storage order minus rows that could never pass WHERE.
            scanned += cands.len() as u64;
            via_index += cands.len() as u64;
            cands.iter().map(|&ri| first_rows[ri].0.clone()).collect()
        }
        None => {
            scanned += first_rows.len() as u64;
            first_rows.iter().map(|r| r.0.clone()).collect()
        }
    };
    for (si, step) in plan.steps.iter().enumerate() {
        let build_rows = &db.table_data(step.table).rows;
        let build_cid = ColumnId { table: step.table, column: step.build_col };
        if let Some(cands) = access.restrictions.get(&step.table) {
            // Hash only the candidates of the build table's indexed
            // predicate — excluded rows fail WHERE, so their join partners
            // would be filtered out anyway.
            scanned += cands.len() as u64;
            via_index += cands.len() as u64;
            let map = build_hash_filtered(build_rows, step.build_col, cands);
            rows = probe_with_map(rows, build_rows, step.probe_pos, &map, opts);
        } else if let Some(idx) = if access.enabled { db.column_index(build_cid) } else { None } {
            // Index-nested-loop join: the column index's match lists *are*
            // the build side; no build pass runs at all.
            lookups += rows.len() as u64;
            rows = probe_with_map(rows, build_rows, step.probe_pos, idx.match_lists(), opts);
            via_index += rows.len() as u64;
        } else {
            scanned += build_rows.len() as u64;
            rows = join_step(rows, build_rows, step.probe_pos, step.build_col, opts);
        }
        scanned += rows.len() as u64;
        if access.enabled && rows.is_empty() && si + 1 < plan.steps.len() {
            // Empty intermediate: the remaining steps preserve emptiness, so
            // skip their build passes outright.
            bailed = true;
            break;
        }
    }
    let joined = Joined { col_pos: plan.col_pos, rows };

    let filtered = filter_rows(&joined, spec);
    let grouped = spec.has_aggregates() || !spec.group_by.is_empty();
    let records = if grouped {
        group_records(&joined, filtered, spec)
    } else {
        plain_records(&joined, filtered, spec)
    };

    let mut result = finalize(db, spec, records)?;
    let mut exact = true;
    if let Some(budget) = opts.row_budget {
        if result.rows.len() > budget {
            result.rows.truncate(budget);
            exact = false;
        }
    }
    let metrics = ExecMetrics {
        rows_scanned: scanned,
        rows_short_circuited: 0,
        exact,
        streamed: false,
        index_lookups: access.lookups + lookups,
        rows_via_index: via_index,
        probes_bailed_empty: u64::from(bailed),
    };
    Ok(ExecOutcome { result, metrics })
}

/// A planner-proven empty probe ([`IndexAccess::provably_empty`]): run the
/// normal group/finalize tail over the empty joined relation so aggregate
/// shapes — a global `COUNT(*)` of 0, NULL `MIN`/`MAX` — are exactly what
/// the full pipeline would produce, without touching a single row.
fn run_empty(
    db: &Database,
    spec: &SelectSpec,
    plan: JoinPlan,
    opts: &ExecOptions,
    access: &IndexAccess,
) -> DbResult<ExecOutcome> {
    let joined = Joined { col_pos: plan.col_pos, rows: Vec::new() };
    let grouped = spec.has_aggregates() || !spec.group_by.is_empty();
    let records = if grouped { group_records(&joined, Vec::new(), spec) } else { Vec::new() };
    let mut result = finalize(db, spec, records)?;
    let mut exact = true;
    if let Some(budget) = opts.row_budget {
        if result.rows.len() > budget {
            result.rows.truncate(budget);
            exact = false;
        }
    }
    let metrics = ExecMetrics {
        rows_scanned: 0,
        rows_short_circuited: 0,
        exact,
        streamed: false,
        index_lookups: access.lookups,
        rows_via_index: 0,
        probes_bailed_empty: 1,
    };
    Ok(ExecOutcome { result, metrics })
}

/// Shard index of a join key for the partitioned parallel join. Partitioning
/// is purely physical: every row of one key lands in one partition, so match
/// lists (and with them the output order) are independent of the count.
fn key_partition(key: &str, partitions: usize) -> usize {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut hasher);
    (hasher.finish() as usize) % partitions
}

/// One materialized hash-join step, parallel when the probe side is large.
fn join_step(
    left: Vec<Vec<Value>>,
    build_rows: &[Row],
    probe_pos: usize,
    build_col: usize,
    opts: &ExecOptions,
) -> Vec<Vec<Value>> {
    let partitions = opts.join_partitions.max(1);
    if partitions == 1 || left.len() < opts.parallel_join_threshold.max(1) {
        let hash = build_hash(build_rows, build_col);
        let mut out = Vec::with_capacity(left.len());
        for row in left {
            expand_probe_row(row, &hash, build_rows, probe_pos, &mut out);
        }
        return out;
    }

    // Build side: distribute every row into its hash partition in one
    // sequential pass (each key lands in exactly one partition, and scanning
    // in row order preserves the per-key match order of the global map).
    let maps = build_hash_partitioned(build_rows, build_col, partitions);

    // Probe side: contiguous owned chunks probed in parallel, concatenated
    // in chunk (original row) order — byte-identical to the sequential join.
    // Partitions are logical (a consumer may size them to the data); the
    // spawned threads are clamped to the machine's parallelism, which does
    // not affect the output order — chunking is independent of the maps.
    let chunks = probe_chunks(left, partitions);
    let outputs: Vec<Vec<Vec<Value>>> = std::thread::scope(|scope| {
        let maps = &maps;
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                scope.spawn(move || {
                    let mut out = Vec::with_capacity(chunk.len());
                    for row in chunk {
                        if let Some(matches) = probe_matches(&row, probe_pos, |key| {
                            &maps[key_partition(key, partitions)]
                        }) {
                            expand_matches(row, matches, build_rows, &mut out);
                        }
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("join probe worker panicked")).collect()
    });
    outputs.concat()
}

/// Split the probe side into contiguous owned chunks, at most one per
/// effective thread (partitions clamped to the machine's parallelism).
/// Concatenating chunk outputs in chunk order restores the original row
/// order exactly.
fn probe_chunks(left: Vec<Vec<Value>>, partitions: usize) -> Vec<Vec<Vec<Value>>> {
    let threads =
        partitions.min(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)).max(1);
    let chunk_size = left.len().div_ceil(threads);
    let mut chunks: Vec<Vec<Vec<Value>>> = Vec::with_capacity(threads);
    let mut rest = left;
    while rest.len() > chunk_size {
        let tail = rest.split_off(chunk_size);
        chunks.push(rest);
        rest = tail;
    }
    chunks.push(rest);
    chunks
}

/// One materialized join step probing a prebuilt match-list map — either
/// borrowed from a column index (index-nested-loop join) or hashed from
/// restriction candidates. The map is shared read-only across probe chunks,
/// so the parallel path needs no partitioning; chunk outputs concatenate in
/// original row order, keeping emission byte-identical to the sequential
/// probe.
fn probe_with_map(
    left: Vec<Vec<Value>>,
    build_rows: &[Row],
    probe_pos: usize,
    map: &HashMap<String, Vec<usize>>,
    opts: &ExecOptions,
) -> Vec<Vec<Value>> {
    let partitions = opts.join_partitions.max(1);
    if partitions == 1 || left.len() < opts.parallel_join_threshold.max(1) {
        let mut out = Vec::with_capacity(left.len());
        for row in left {
            expand_probe_row(row, map, build_rows, probe_pos, &mut out);
        }
        return out;
    }
    let chunks = probe_chunks(left, partitions);
    let outputs: Vec<Vec<Vec<Value>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                scope.spawn(move || {
                    let mut out = Vec::with_capacity(chunk.len());
                    for row in chunk {
                        expand_probe_row(row, map, build_rows, probe_pos, &mut out);
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("join probe worker panicked")).collect()
    });
    outputs.concat()
}

/// The build-side match list of one probe row, or `None` when its join key
/// is NULL or unmatched. `select` picks the hash table to consult (the
/// single global map, or the key's partition) — both probe loops share this
/// so the NULL/key semantics cannot drift between them.
fn probe_matches<'h>(
    row: &[Value],
    probe_pos: usize,
    select: impl FnOnce(&str) -> &'h HashMap<String, Vec<usize>>,
) -> Option<&'h [usize]> {
    if row[probe_pos].is_null() {
        return None;
    }
    let key = row[probe_pos].group_key();
    select(&key).get(&key).map(Vec::as_slice)
}

/// Append one probe row combined with each of its (non-empty) matches,
/// moving the row into the last match instead of cloning it once more.
fn expand_matches(
    row: Vec<Value>,
    matches: &[usize],
    build_rows: &[Row],
    out: &mut Vec<Vec<Value>>,
) {
    out.reserve(matches.len());
    for &ri in &matches[..matches.len() - 1] {
        let mut combined = row.clone();
        combined.extend(build_rows[ri].0.iter().cloned());
        out.push(combined);
    }
    let last = matches[matches.len() - 1];
    let mut combined = row;
    combined.extend(build_rows[last].0.iter().cloned());
    out.push(combined);
}

/// Expand one probe row against the (unpartitioned) build hash table.
fn expand_probe_row(
    row: Vec<Value>,
    hash: &HashMap<String, Vec<usize>>,
    build_rows: &[Row],
    probe_pos: usize,
    out: &mut Vec<Vec<Value>>,
) {
    if let Some(matches) = probe_matches(&row, probe_pos, |_| hash) {
        expand_matches(row, matches, build_rows, out);
    }
}

/// Whether one combined row survives the WHERE clause.
fn row_passes(spec: &SelectSpec, col_pos: &HashMap<ColumnId, usize>, row: &[Value]) -> bool {
    if spec.predicates.is_empty() {
        return true;
    }
    match spec.predicate_op {
        LogicalOp::And => spec.predicates.iter().all(|p| eval_predicate(col_pos, row, p)),
        LogicalOp::Or => spec.predicates.iter().any(|p| eval_predicate(col_pos, row, p)),
    }
}

/// Evaluate a non-aggregated predicate against one combined row.
fn eval_predicate(col_pos: &HashMap<ColumnId, usize>, row: &[Value], pred: &Predicate) -> bool {
    let col = pred.col.expect("WHERE predicate has a column");
    let pos = col_pos[&col];
    compare(&row[pos], pred.op, &pred.value, pred.value2.as_ref())
}

/// Apply a comparison operator.
fn compare(lhs: &Value, op: CmpOp, rhs: &Value, rhs2: Option<&Value>) -> bool {
    use std::cmp::Ordering::*;
    match op {
        CmpOp::Eq => lhs.sql_eq(rhs),
        CmpOp::Ne => !lhs.is_null() && !rhs.is_null() && !lhs.sql_eq(rhs),
        CmpOp::Lt => matches!(lhs.sql_cmp(rhs), Some(Less)),
        CmpOp::Le => matches!(lhs.sql_cmp(rhs), Some(Less | Equal)),
        CmpOp::Gt => matches!(lhs.sql_cmp(rhs), Some(Greater)),
        CmpOp::Ge => matches!(lhs.sql_cmp(rhs), Some(Greater | Equal)),
        CmpOp::Like => match rhs {
            Value::Text(p) => lhs.sql_like(p),
            _ => false,
        },
        CmpOp::Between => {
            let hi = rhs2.unwrap_or(rhs);
            matches!(lhs.sql_cmp(rhs), Some(Greater | Equal))
                && matches!(lhs.sql_cmp(hi), Some(Less | Equal))
        }
    }
}

/// Row indices surviving the WHERE clause.
fn filter_rows(joined: &Joined, spec: &SelectSpec) -> Vec<usize> {
    (0..joined.rows.len())
        .filter(|&ri| row_passes(spec, &joined.col_pos, &joined.rows[ri]))
        .collect()
}

/// Compute an aggregate over a set of rows.
fn aggregate(joined: &Joined, rows: &[usize], agg: AggFunc, col: Option<ColumnId>) -> Value {
    let values: Vec<&Value> = match col {
        Some(c) => {
            let pos = joined.col_pos[&c];
            rows.iter().map(|&ri| &joined.rows[ri][pos]).filter(|v| !v.is_null()).collect()
        }
        None => Vec::new(),
    };
    match agg {
        AggFunc::Count => {
            if col.is_none() {
                Value::int(rows.len() as i64)
            } else {
                Value::int(values.len() as i64)
            }
        }
        AggFunc::Sum => {
            let sum: f64 = values.iter().filter_map(|v| v.as_number()).sum();
            if values.is_empty() {
                Value::Null
            } else {
                Value::Number(sum)
            }
        }
        AggFunc::Avg => {
            let nums: Vec<f64> = values.iter().filter_map(|v| v.as_number()).collect();
            if nums.is_empty() {
                Value::Null
            } else {
                Value::Number(nums.iter().sum::<f64>() / nums.len() as f64)
            }
        }
        AggFunc::Min => {
            values.iter().cloned().cloned().min_by(|a, b| a.total_cmp(b)).unwrap_or(Value::Null)
        }
        AggFunc::Max => {
            values.iter().cloned().cloned().max_by(|a, b| a.total_cmp(b)).unwrap_or(Value::Null)
        }
    }
}

/// Evaluate a HAVING predicate over a group.
fn eval_having(joined: &Joined, rows: &[usize], pred: &Predicate) -> bool {
    let agg = pred.agg.expect("HAVING predicate is aggregated");
    let v = aggregate(joined, rows, agg, pred.col);
    compare(&v, pred.op, &pred.value, pred.value2.as_ref())
}

/// Build output records for grouped queries.
fn group_records(joined: &Joined, filtered: Vec<usize>, spec: &SelectSpec) -> Vec<Record> {
    // Partition the filtered rows into groups.
    let mut groups: Vec<(Vec<usize>,)> = Vec::new();
    if spec.group_by.is_empty() {
        groups.push((filtered,));
    } else {
        let mut by_key: HashMap<String, Vec<usize>> = HashMap::new();
        let mut order: Vec<String> = Vec::new();
        for ri in filtered {
            let key =
                group_key_of(spec.group_by.iter().map(|c| &joined.rows[ri][joined.col_pos[c]]));
            if !by_key.contains_key(&key) {
                order.push(key.clone());
            }
            by_key.entry(key).or_default().push(ri);
        }
        for key in order {
            groups.push((by_key.remove(&key).expect("group key present"),));
        }
    }

    let mut records = Vec::with_capacity(groups.len());
    for (rows,) in groups {
        // With an empty global group, only COUNT produces a row in real SQL when
        // there is no GROUP BY; we keep that behaviour.
        if rows.is_empty() && !spec.group_by.is_empty() {
            continue;
        }
        if !spec.having.iter().all(|h| eval_having(joined, &rows, h)) {
            continue;
        }
        let projected: Vec<Value> =
            spec.select.iter().map(|item| project_item(joined, &rows, item)).collect();
        let order_key = spec.order_by.map(|o| match o.key {
            OrderKey::Column(c) => rows
                .first()
                .map(|&ri| joined.rows[ri][joined.col_pos[&c]].clone())
                .unwrap_or(Value::Null),
            OrderKey::Aggregate(agg, col) => aggregate(joined, &rows, agg, col),
        });
        records.push(Record { projected, order_key });
    }
    records
}

/// Project one SELECT item for a group (or a single-row "group").
fn project_item(joined: &Joined, rows: &[usize], item: &SelectItem) -> Value {
    match (item.agg, item.col) {
        (Some(agg), col) => aggregate(joined, rows, agg, col),
        (None, Some(c)) => rows
            .first()
            .map(|&ri| joined.rows[ri][joined.col_pos[&c]].clone())
            .unwrap_or(Value::Null),
        (None, None) => Value::Null,
    }
}

/// Build output records for non-grouped queries.
fn plain_records(joined: &Joined, filtered: Vec<usize>, spec: &SelectSpec) -> Vec<Record> {
    filtered
        .into_iter()
        .map(|ri| {
            let row = std::slice::from_ref(&ri);
            let projected: Vec<Value> =
                spec.select.iter().map(|item| project_item(joined, row, item)).collect();
            let order_key = spec.order_by.map(|o| match o.key {
                OrderKey::Column(c) => joined.rows[ri][joined.col_pos[&c]].clone(),
                OrderKey::Aggregate(agg, col) => aggregate(joined, row, agg, col),
            });
            Record { projected, order_key }
        })
        .collect()
}

/// Output column names and types of a spec.
fn headers(db: &Database, spec: &SelectSpec) -> DbResult<(Vec<String>, Vec<DataType>)> {
    let schema = db.schema();
    let mut columns = Vec::with_capacity(spec.select.len());
    let mut types = Vec::with_capacity(spec.select.len());
    for item in &spec.select {
        match (item.agg, item.col) {
            (Some(agg), Some(c)) => {
                columns.push(format!("{agg}({})", schema.qualified_name(c)));
                types.push(agg.result_type(Some(schema.column(c).dtype)));
            }
            (Some(agg), None) => {
                columns.push(format!("{agg}(*)"));
                types.push(DataType::Number);
            }
            (None, Some(c)) => {
                columns.push(schema.qualified_name(c));
                types.push(schema.column(c).dtype);
            }
            (None, None) => {
                return Err(DbError::InvalidQuery(
                    "SELECT item with neither aggregate nor column".into(),
                ))
            }
        }
    }
    Ok((columns, types))
}

/// Apply DISTINCT, ORDER BY and LIMIT and attach headers.
fn finalize(db: &Database, spec: &SelectSpec, mut records: Vec<Record>) -> DbResult<ResultSet> {
    if spec.distinct {
        let mut seen: HashSet<String> = HashSet::new();
        records.retain(|r| seen.insert(group_key_of(r.projected.iter())));
    }
    if let Some(order) = spec.order_by {
        records.sort_by(|a, b| {
            let ka = a.order_key.as_ref().unwrap_or(&Value::Null);
            let kb = b.order_key.as_ref().unwrap_or(&Value::Null);
            let ord = ka.total_cmp(kb);
            if order.desc {
                ord.reverse()
            } else {
                ord
            }
        });
    }
    if let Some(limit) = spec.limit {
        records.truncate(limit);
    }

    let (columns, types) = headers(db, spec)?;
    Ok(ResultSet { columns, types, rows: records.into_iter().map(|r| Row(r.projected)).collect() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join_graph::{JoinGraph, JoinTree};
    use crate::schema::{ColumnDef, Schema, TableDef};

    /// Build the movie database from the paper's motivating example.
    fn movie_db() -> Database {
        let mut s = Schema::new("movies");
        s.add_table(TableDef::new(
            "actor",
            vec![
                ColumnDef::number("aid"),
                ColumnDef::text("name"),
                ColumnDef::number("birth_yr"),
                ColumnDef::text("gender"),
            ],
            Some(0),
        ));
        s.add_table(TableDef::new(
            "movies",
            vec![ColumnDef::number("mid"), ColumnDef::text("name"), ColumnDef::number("year")],
            Some(0),
        ));
        s.add_table(TableDef::new(
            "starring",
            vec![ColumnDef::number("aid"), ColumnDef::number("mid")],
            None,
        ));
        s.add_foreign_key("starring", "aid", "actor", "aid").unwrap();
        s.add_foreign_key("starring", "mid", "movies", "mid").unwrap();
        let mut db = Database::new(s).unwrap();
        db.insert_all(
            "actor",
            vec![
                vec![
                    Value::int(1),
                    Value::text("Tom Hanks"),
                    Value::int(1956),
                    Value::text("male"),
                ],
                vec![
                    Value::int(2),
                    Value::text("Sandra Bullock"),
                    Value::int(1964),
                    Value::text("female"),
                ],
                vec![
                    Value::int(3),
                    Value::text("Brad Pitt"),
                    Value::int(1963),
                    Value::text("male"),
                ],
            ],
        )
        .unwrap();
        db.insert_all(
            "movies",
            vec![
                vec![Value::int(10), Value::text("Forrest Gump"), Value::int(1994)],
                vec![Value::int(11), Value::text("Gravity"), Value::int(2013)],
                vec![Value::int(12), Value::text("Fight Club"), Value::int(1999)],
            ],
        )
        .unwrap();
        db.insert_all(
            "starring",
            vec![
                vec![Value::int(1), Value::int(10)],
                vec![Value::int(2), Value::int(11)],
                vec![Value::int(3), Value::int(12)],
            ],
        )
        .unwrap();
        db.rebuild_index();
        db
    }

    fn col(db: &Database, t: &str, c: &str) -> ColumnId {
        db.schema().column_id(t, c).unwrap()
    }

    #[test]
    fn simple_projection() {
        let db = movie_db();
        let spec = SelectSpec {
            select: vec![SelectItem::column(col(&db, "actor", "name"))],
            join: JoinTree::single(db.schema().table_id("actor").unwrap()),
            ..Default::default()
        };
        let rs = execute(&db, &spec).unwrap();
        assert_eq!(rs.len(), 3);
        assert_eq!(rs.columns, vec!["actor.name".to_string()]);
        assert_eq!(rs.types, vec![DataType::Text]);
    }

    #[test]
    fn where_filter_and_or() {
        let db = movie_db();
        let year = col(&db, "movies", "year");
        let mut spec = SelectSpec {
            select: vec![SelectItem::column(col(&db, "movies", "name"))],
            join: JoinTree::single(db.schema().table_id("movies").unwrap()),
            predicates: vec![
                Predicate::new(year, CmpOp::Lt, Value::int(1995)),
                Predicate::new(year, CmpOp::Gt, Value::int(2000)),
            ],
            predicate_op: LogicalOp::Or,
            ..Default::default()
        };
        let rs = execute(&db, &spec).unwrap();
        assert_eq!(rs.len(), 2); // Forrest Gump and Gravity
        spec.predicate_op = LogicalOp::And;
        let rs = execute(&db, &spec).unwrap();
        assert_eq!(rs.len(), 0);
    }

    #[test]
    fn three_way_join() {
        let db = movie_db();
        let schema = db.schema();
        let graph = JoinGraph::new(schema);
        let join = graph
            .steiner_tree(&[schema.table_id("actor").unwrap(), schema.table_id("movies").unwrap()])
            .unwrap();
        let spec = SelectSpec {
            select: vec![
                SelectItem::column(col(&db, "movies", "name")),
                SelectItem::column(col(&db, "actor", "name")),
            ],
            join,
            predicates: vec![Predicate::new(
                col(&db, "actor", "name"),
                CmpOp::Eq,
                Value::text("Tom Hanks"),
            )],
            ..Default::default()
        };
        let rs = execute(&db, &spec).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0].0[0], Value::text("Forrest Gump"));
    }

    #[test]
    fn group_by_with_count_and_having() {
        let db = movie_db();
        let schema = db.schema();
        let graph = JoinGraph::new(schema);
        let join = graph
            .steiner_tree(&[
                schema.table_id("actor").unwrap(),
                schema.table_id("starring").unwrap(),
            ])
            .unwrap();
        let gender = col(&db, "actor", "gender");
        let spec = SelectSpec {
            select: vec![SelectItem::column(gender), SelectItem::count_star()],
            join,
            group_by: vec![gender],
            having: vec![Predicate::having(AggFunc::Count, None, CmpOp::Ge, Value::int(2))],
            ..Default::default()
        };
        let rs = execute(&db, &spec).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0].0[0], Value::text("male"));
        assert_eq!(rs.rows[0].0[1], Value::int(2));
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let db = movie_db();
        let spec = SelectSpec {
            select: vec![SelectItem::count_star()],
            join: JoinTree::single(db.schema().table_id("movies").unwrap()),
            ..Default::default()
        };
        let rs = execute(&db, &spec).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0].0[0], Value::int(3));
    }

    #[test]
    fn order_by_and_limit() {
        let db = movie_db();
        let year = col(&db, "movies", "year");
        let spec = SelectSpec {
            select: vec![SelectItem::column(col(&db, "movies", "name"))],
            join: JoinTree::single(db.schema().table_id("movies").unwrap()),
            order_by: Some(OrderSpec { key: OrderKey::Column(year), desc: true }),
            limit: Some(1),
            ..Default::default()
        };
        let rs = execute(&db, &spec).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0].0[0], Value::text("Gravity"));
    }

    #[test]
    fn order_by_aggregate() {
        let db = movie_db();
        let schema = db.schema();
        let graph = JoinGraph::new(schema);
        let join = graph
            .steiner_tree(&[
                schema.table_id("actor").unwrap(),
                schema.table_id("starring").unwrap(),
            ])
            .unwrap();
        let gender = col(&db, "actor", "gender");
        let spec = SelectSpec {
            select: vec![SelectItem::column(gender), SelectItem::count_star()],
            join,
            group_by: vec![gender],
            order_by: Some(OrderSpec {
                key: OrderKey::Aggregate(AggFunc::Count, None),
                desc: true,
            }),
            ..Default::default()
        };
        let rs = execute(&db, &spec).unwrap();
        assert_eq!(rs.rows[0].0[0], Value::text("male"));
        assert_eq!(rs.rows[1].0[0], Value::text("female"));
    }

    #[test]
    fn distinct_removes_duplicates() {
        let db = movie_db();
        let gender = col(&db, "actor", "gender");
        let spec = SelectSpec {
            select: vec![SelectItem::column(gender)],
            distinct: true,
            join: JoinTree::single(db.schema().table_id("actor").unwrap()),
            ..Default::default()
        };
        let rs = execute(&db, &spec).unwrap();
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn aggregates_min_max_sum_avg() {
        let db = movie_db();
        let year = col(&db, "movies", "year");
        let spec = SelectSpec {
            select: vec![
                SelectItem::aggregate(AggFunc::Min, year),
                SelectItem::aggregate(AggFunc::Max, year),
                SelectItem::aggregate(AggFunc::Sum, year),
                SelectItem::aggregate(AggFunc::Avg, year),
                SelectItem::aggregate(AggFunc::Count, year),
            ],
            join: JoinTree::single(db.schema().table_id("movies").unwrap()),
            ..Default::default()
        };
        let rs = execute(&db, &spec).unwrap();
        assert_eq!(rs.rows[0].0[0], Value::int(1994));
        assert_eq!(rs.rows[0].0[1], Value::int(2013));
        assert_eq!(rs.rows[0].0[2], Value::int(1994 + 2013 + 1999));
        assert_eq!(rs.rows[0].0[4], Value::int(3));
        let avg = rs.rows[0].0[3].as_number().unwrap();
        assert!((avg - 2002.0).abs() < 1.0);
    }

    #[test]
    fn between_and_like_predicates() {
        let db = movie_db();
        let year = col(&db, "movies", "year");
        let name = col(&db, "movies", "name");
        let spec = SelectSpec {
            select: vec![SelectItem::column(name)],
            join: JoinTree::single(db.schema().table_id("movies").unwrap()),
            predicates: vec![Predicate::between(year, Value::int(1990), Value::int(2000))],
            ..Default::default()
        };
        assert_eq!(execute(&db, &spec).unwrap().len(), 2);

        let spec = SelectSpec {
            select: vec![SelectItem::column(name)],
            join: JoinTree::single(db.schema().table_id("movies").unwrap()),
            predicates: vec![Predicate::new(name, CmpOp::Like, Value::text("%club%"))],
            ..Default::default()
        };
        let rs = execute(&db, &spec).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0].0[0], Value::text("Fight Club"));
    }

    #[test]
    fn invalid_queries_rejected() {
        let db = movie_db();
        // Empty SELECT.
        let spec = SelectSpec {
            join: JoinTree::single(db.schema().table_id("movies").unwrap()),
            ..Default::default()
        };
        assert!(execute(&db, &spec).is_err());
        // Column not covered by FROM.
        let spec = SelectSpec {
            select: vec![SelectItem::column(col(&db, "actor", "name"))],
            join: JoinTree::single(db.schema().table_id("movies").unwrap()),
            ..Default::default()
        };
        assert!(matches!(execute(&db, &spec), Err(DbError::InvalidQuery(_))));
    }

    #[test]
    fn result_table_rendering() {
        let db = movie_db();
        let spec = SelectSpec {
            select: vec![SelectItem::column(col(&db, "movies", "name"))],
            join: JoinTree::single(db.schema().table_id("movies").unwrap()),
            ..Default::default()
        };
        let rs = execute(&db, &spec).unwrap();
        let table = rs.to_table_string(2);
        assert!(table.contains("movies.name"));
        assert!(table.contains("more rows"));
    }

    /// A larger fixture for streaming/parallel tests: `left` (many rows) joins
    /// `right` with a fan-out per key, so the joined relation is much larger
    /// than either base table.
    fn fanout_db(left_rows: usize, keys: usize, fanout: usize) -> Database {
        let mut s = Schema::new("fanout");
        s.add_table(TableDef::new(
            "right",
            vec![ColumnDef::number("k"), ColumnDef::number("v")],
            Some(0),
        ));
        s.add_table(TableDef::new(
            "left",
            vec![ColumnDef::number("id"), ColumnDef::number("k")],
            Some(0),
        ));
        s.add_foreign_key("left", "k", "right", "k").unwrap();
        let mut db = Database::new(s).unwrap();
        db.insert_all(
            "right",
            (0..keys * fanout).map(|i| vec![Value::int((i % keys) as i64), Value::int(i as i64)]),
        )
        .unwrap();
        db.insert_all(
            "left",
            (0..left_rows).map(|i| vec![Value::int(i as i64), Value::int((i % keys) as i64)]),
        )
        .unwrap();
        db.rebuild_index();
        db
    }

    fn fanout_join_spec(db: &Database) -> SelectSpec {
        let schema = db.schema();
        let graph = JoinGraph::new(schema);
        let join = graph
            .steiner_tree(&[schema.table_id("left").unwrap(), schema.table_id("right").unwrap()])
            .unwrap();
        SelectSpec {
            select: vec![
                SelectItem::column(col(db, "left", "id")),
                SelectItem::column(col(db, "right", "v")),
            ],
            join,
            ..Default::default()
        }
    }

    #[test]
    fn limit_probe_short_circuits_the_join() {
        let db = fanout_db(500, 10, 20);
        let mut probe = fanout_join_spec(&db);
        probe.limit = Some(1);

        let streaming = execute_with(&db, &probe, &ExecOptions::default()).unwrap();
        let materialized = execute_with(
            &db,
            &probe,
            &ExecOptions { limit_pushdown: false, ..ExecOptions::default() },
        )
        .unwrap();

        assert_eq!(streaming.result, materialized.result, "strategies must agree");
        assert!(streaming.metrics.streamed);
        assert!(!materialized.metrics.streamed);
        assert!(streaming.metrics.exact && materialized.metrics.exact);
        assert!(
            streaming.metrics.rows_scanned * 10 < materialized.metrics.rows_scanned,
            "LIMIT 1 must scan <10% of the materializing executor's rows: {} vs {}",
            streaming.metrics.rows_scanned,
            materialized.metrics.rows_scanned
        );
        assert!(streaming.metrics.rows_short_circuited > 0);
    }

    #[test]
    fn partition_counts_produce_identical_results() {
        let db = fanout_db(600, 7, 5);
        let mut spec = fanout_join_spec(&db);
        spec.predicates = vec![Predicate::new(col(&db, "right", "v"), CmpOp::Ge, Value::int(3))];

        let baseline = execute_with(
            &db,
            &spec,
            &ExecOptions {
                limit_pushdown: false,
                join_partitions: 1,
                parallel_join_threshold: 1,
                ..ExecOptions::default()
            },
        )
        .unwrap();
        for partitions in [2usize, 4] {
            let parallel = execute_with(
                &db,
                &spec,
                &ExecOptions {
                    limit_pushdown: false,
                    join_partitions: partitions,
                    parallel_join_threshold: 1,
                    ..ExecOptions::default()
                },
            )
            .unwrap();
            assert_eq!(
                baseline.result, parallel.result,
                "{partitions}-partition join diverged from the sequential join"
            );
        }
    }

    #[test]
    fn row_budget_truncates_and_reports_inexact() {
        let db = movie_db();
        let spec = SelectSpec {
            select: vec![SelectItem::column(col(&db, "movies", "name"))],
            join: JoinTree::single(db.schema().table_id("movies").unwrap()),
            ..Default::default()
        };
        let out = execute_with(
            &db,
            &spec,
            &ExecOptions { row_budget: Some(2), ..ExecOptions::default() },
        )
        .unwrap();
        assert_eq!(out.result.len(), 2);
        assert!(!out.metrics.exact, "budget cut a 3-row result to 2");

        let out = execute_with(
            &db,
            &spec,
            &ExecOptions { row_budget: Some(10), ..ExecOptions::default() },
        )
        .unwrap();
        assert_eq!(out.result.len(), 3);
        assert!(out.metrics.exact, "budget larger than the result is exact");
    }

    #[test]
    fn budget_truncation_matches_on_sorted_queries() {
        // With an ORDER BY, the budget must truncate the *sorted* output.
        let db = movie_db();
        let year = col(&db, "movies", "year");
        let spec = SelectSpec {
            select: vec![SelectItem::column(col(&db, "movies", "name"))],
            join: JoinTree::single(db.schema().table_id("movies").unwrap()),
            order_by: Some(OrderSpec { key: OrderKey::Column(year), desc: true }),
            ..Default::default()
        };
        let out = execute_with(
            &db,
            &spec,
            &ExecOptions { row_budget: Some(1), ..ExecOptions::default() },
        )
        .unwrap();
        assert_eq!(out.result.rows[0].0[0], Value::text("Gravity"));
        assert!(!out.metrics.exact);
    }

    #[test]
    fn presorted_order_by_streams_and_matches_materialized() {
        // `right` is the probe-side (first) table of the join plan and its
        // `v` column is stored ascending, so ORDER BY right.v ASC LIMIT k
        // can stream; ORDER BY ... DESC is not presorted and now streams via
        // the ordered index instead of falling back to materializing.
        let db = fanout_db(400, 8, 3);
        let mut spec = fanout_join_spec(&db);
        spec.order_by =
            Some(OrderSpec { key: OrderKey::Column(col(&db, "right", "v")), desc: false });
        spec.limit = Some(5);

        let streaming = execute_with(&db, &spec, &ExecOptions::default()).unwrap();
        let materialized = execute_with(
            &db,
            &spec,
            &ExecOptions { limit_pushdown: false, ..ExecOptions::default() },
        )
        .unwrap();
        assert!(streaming.metrics.streamed, "ascending presorted key must stream");
        assert_eq!(streaming.result, materialized.result);
        assert!(streaming.metrics.rows_scanned < materialized.metrics.rows_scanned);

        spec.order_by =
            Some(OrderSpec { key: OrderKey::Column(col(&db, "right", "v")), desc: true });
        let descending = execute_with(&db, &spec, &ExecOptions::default()).unwrap();
        assert!(descending.metrics.streamed, "descending key streams via the ordered index");
        assert!(descending.metrics.rows_via_index > 0);
        let desc_scan = execute_with(
            &db,
            &spec,
            &ExecOptions { index_access: false, ..ExecOptions::default() },
        )
        .unwrap();
        assert!(!desc_scan.metrics.streamed, "without the index the sort materializes");
        assert_eq!(descending.result, desc_scan.result);
    }

    #[test]
    fn order_by_limit_streams_from_index_on_unsorted_column() {
        // movies.name is stored F, G, F — sorted in neither direction — so
        // only the ordered index scan can stream ORDER BY name LIMIT k.
        let db = movie_db();
        let name = col(&db, "movies", "name");
        for desc in [false, true] {
            let spec = SelectSpec {
                select: vec![SelectItem::column(name)],
                join: JoinTree::single(db.schema().table_id("movies").unwrap()),
                order_by: Some(OrderSpec { key: OrderKey::Column(name), desc }),
                limit: Some(2),
                ..Default::default()
            };
            let indexed = execute_with(&db, &spec, &ExecOptions::default()).unwrap();
            let scan = execute_with(
                &db,
                &spec,
                &ExecOptions { index_access: false, ..ExecOptions::default() },
            )
            .unwrap();
            assert!(indexed.metrics.streamed, "indexed unsorted column streams (desc={desc})");
            assert!(indexed.metrics.rows_via_index > 0);
            assert!(indexed.metrics.index_lookups > 0);
            assert!(!scan.metrics.streamed, "scan path materializes and sorts");
            assert_eq!(indexed.result, scan.result, "emission byte-identical (desc={desc})");
        }
    }

    #[test]
    fn eq_predicate_restriction_scans_less() {
        let db = fanout_db(500, 10, 20);
        let spec = SelectSpec {
            select: vec![SelectItem::column(col(&db, "right", "v"))],
            join: JoinTree::single(db.schema().table_id("right").unwrap()),
            predicates: vec![Predicate::new(col(&db, "right", "v"), CmpOp::Eq, Value::int(137))],
            ..Default::default()
        };
        let indexed = execute_with(&db, &spec, &ExecOptions::default()).unwrap();
        let scan = execute_with(
            &db,
            &spec,
            &ExecOptions { index_access: false, ..ExecOptions::default() },
        )
        .unwrap();
        assert_eq!(indexed.result, scan.result);
        assert_eq!(indexed.result.len(), 1);
        assert!(
            indexed.metrics.rows_scanned < scan.metrics.rows_scanned,
            "point lookup must scan fewer rows: {} vs {}",
            indexed.metrics.rows_scanned,
            scan.metrics.rows_scanned
        );
        assert!(indexed.metrics.index_lookups > 0);
        assert!(indexed.metrics.rows_via_index > 0);
    }

    #[test]
    fn inlj_skips_build_side_construction() {
        let db = fanout_db(500, 10, 20);
        let mut probe = fanout_join_spec(&db);
        probe.limit = Some(1);
        let indexed = execute_with(&db, &probe, &ExecOptions::default()).unwrap();
        let scan = execute_with(
            &db,
            &probe,
            &ExecOptions { index_access: false, ..ExecOptions::default() },
        )
        .unwrap();
        assert_eq!(indexed.result, scan.result);
        // The scan path hashes all 500 build rows up front; the INLJ borrows
        // the index's match lists and never touches them.
        assert!(
            indexed.metrics.rows_scanned + 500 <= scan.metrics.rows_scanned,
            "INLJ must skip the 500-row build pass: {} vs {}",
            indexed.metrics.rows_scanned,
            scan.metrics.rows_scanned
        );
        assert!(indexed.metrics.index_lookups > 0);
    }

    #[test]
    fn impossible_predicate_bails_without_scanning() {
        let db = movie_db();
        let year = col(&db, "movies", "year");
        let mut spec = SelectSpec {
            select: vec![SelectItem::column(col(&db, "movies", "name"))],
            join: JoinTree::single(db.schema().table_id("movies").unwrap()),
            predicates: vec![Predicate::new(year, CmpOp::Eq, Value::int(1234))],
            ..Default::default()
        };
        let out = execute_with(&db, &spec, &ExecOptions::default()).unwrap();
        assert!(out.result.is_empty());
        assert!(out.metrics.exact);
        assert_eq!(out.metrics.probes_bailed_empty, 1);
        assert_eq!(out.metrics.rows_scanned, 0, "bail before touching any row");

        // Aggregate shape is preserved: COUNT(*) over the bailed probe is 0,
        // exactly as the scan path computes it.
        spec.select = vec![SelectItem::count_star()];
        let counted = execute_with(&db, &spec, &ExecOptions::default()).unwrap();
        let scan = execute_with(
            &db,
            &spec,
            &ExecOptions { index_access: false, ..ExecOptions::default() },
        )
        .unwrap();
        assert_eq!(counted.result, scan.result);
        assert_eq!(counted.result.rows[0].0[0], Value::int(0));
    }

    #[test]
    fn greedy_join_reorder_is_byte_identical() {
        let db = movie_db();
        let schema = db.schema();
        let graph = JoinGraph::new(schema);
        let join = graph
            .steiner_tree(&[schema.table_id("actor").unwrap(), schema.table_id("movies").unwrap()])
            .unwrap();
        let spec = SelectSpec {
            select: vec![
                SelectItem::column(col(&db, "movies", "name")),
                SelectItem::column(col(&db, "actor", "name")),
            ],
            join,
            predicates: vec![Predicate::new(
                col(&db, "actor", "name"),
                CmpOp::Eq,
                Value::text("Brad Pitt"),
            )],
            ..Default::default()
        };
        let indexed = execute_with(&db, &spec, &ExecOptions::default()).unwrap();
        let scan = execute_with(
            &db,
            &spec,
            &ExecOptions { index_access: false, ..ExecOptions::default() },
        )
        .unwrap();
        assert_eq!(indexed.result, scan.result, "reordered plan must emit identically");
        assert_eq!(indexed.result.len(), 1);
        assert_eq!(indexed.result.rows[0].0[0], Value::text("Fight Club"));
        assert!(indexed.metrics.rows_scanned <= scan.metrics.rows_scanned);
    }

    #[test]
    fn range_predicate_uses_index_and_matches_scan() {
        let db = fanout_db(500, 10, 20);
        let v = col(&db, "right", "v");
        for pred in [
            Predicate::new(v, CmpOp::Lt, Value::int(20)),
            Predicate::new(v, CmpOp::Ge, Value::int(180)),
            Predicate::between(v, Value::int(50), Value::int(60)),
        ] {
            let spec = SelectSpec {
                select: vec![SelectItem::column(v)],
                join: JoinTree::single(db.schema().table_id("right").unwrap()),
                predicates: vec![pred],
                ..Default::default()
            };
            let indexed = execute_with(&db, &spec, &ExecOptions::default()).unwrap();
            let scan = execute_with(
                &db,
                &spec,
                &ExecOptions { index_access: false, ..ExecOptions::default() },
            )
            .unwrap();
            assert_eq!(indexed.result, scan.result);
            assert!(indexed.metrics.rows_scanned < scan.metrics.rows_scanned);
        }
    }

    #[test]
    fn streaming_distinct_matches_materialized() {
        let db = fanout_db(300, 5, 4);
        let mut spec = fanout_join_spec(&db);
        spec.select = vec![SelectItem::column(col(&db, "left", "k"))];
        spec.distinct = true;
        spec.limit = Some(3);

        let streaming = execute_with(&db, &spec, &ExecOptions::default()).unwrap();
        let materialized = execute_with(
            &db,
            &spec,
            &ExecOptions { limit_pushdown: false, ..ExecOptions::default() },
        )
        .unwrap();
        assert!(streaming.metrics.streamed);
        assert_eq!(streaming.result, materialized.result);
    }

    #[test]
    fn zero_limit_produces_no_rows() {
        let db = movie_db();
        let spec = SelectSpec {
            select: vec![SelectItem::column(col(&db, "movies", "name"))],
            join: JoinTree::single(db.schema().table_id("movies").unwrap()),
            limit: Some(0),
            ..Default::default()
        };
        let out = execute_with(&db, &spec, &ExecOptions::default()).unwrap();
        assert!(out.result.is_empty());
        assert!(out.metrics.exact);
    }
}
