//! Execution of [`SelectSpec`] queries against a [`Database`].
//!
//! The pipeline mirrors a textbook SPJA evaluation: join along the FK edges of
//! the join tree (hash joins), filter with the WHERE predicates, group and
//! aggregate, filter with HAVING, project, de-duplicate (DISTINCT), sort and
//! limit. Verification probes issued by the Duoquest verifier are ordinary
//! `SelectSpec`s with a `LIMIT 1`, so they follow the same path.

use crate::database::{Database, Row};
use crate::error::{DbError, DbResult};
use crate::query::{
    AggFunc, CmpOp, LogicalOp, OrderKey, OrderSpec, Predicate, SelectItem, SelectSpec,
};
use crate::schema::ColumnId;
use crate::types::{DataType, Value};
use std::collections::HashMap;

/// The result of executing a query: column headers plus rows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResultSet {
    /// Output column names (qualified, e.g. `actor.name` or `COUNT(*)`).
    pub columns: Vec<String>,
    /// Output column types.
    pub types: Vec<DataType>,
    /// Output rows.
    pub rows: Vec<Row>,
}

impl ResultSet {
    /// Number of output rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the result set is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Values of one output column.
    pub fn column(&self, idx: usize) -> impl Iterator<Item = &Value> {
        self.rows.iter().map(move |r| &r.0[idx])
    }

    /// Render the result set as a compact ASCII table (used by the examples).
    pub fn to_table_string(&self, max_rows: usize) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(" | "));
        out.push('\n');
        out.push_str(&"-".repeat(self.columns.join(" | ").len().max(4)));
        out.push('\n');
        for row in self.rows.iter().take(max_rows) {
            let cells: Vec<String> = row.0.iter().map(|v| v.to_string()).collect();
            out.push_str(&cells.join(" | "));
            out.push('\n');
        }
        if self.rows.len() > max_rows {
            out.push_str(&format!("... ({} more rows)\n", self.rows.len() - max_rows));
        }
        out
    }
}

/// The joined intermediate relation: a mapping from column ids to positions in
/// the combined row, plus the combined rows themselves.
struct Joined {
    col_pos: HashMap<ColumnId, usize>,
    rows: Vec<Vec<Value>>,
}

/// Execute a query against a database.
pub fn execute(db: &Database, spec: &SelectSpec) -> DbResult<ResultSet> {
    validate(db, spec)?;
    let joined = join_tables(db, spec)?;
    let filtered = filter_rows(&joined, spec);

    let grouped = spec.has_aggregates() || !spec.group_by.is_empty();
    let records = if grouped {
        group_records(&joined, filtered, spec)
    } else {
        plain_records(&joined, filtered, spec)
    };

    finalize(db, spec, records)
}

/// One output record before distinct/sort/limit: projected values plus the sort key.
struct Record {
    projected: Vec<Value>,
    order_key: Option<Value>,
}

fn validate(db: &Database, spec: &SelectSpec) -> DbResult<()> {
    if spec.select.is_empty() {
        return Err(DbError::InvalidQuery("SELECT clause is empty".into()));
    }
    if spec.join.tables.is_empty() {
        return Err(DbError::InvalidQuery("FROM clause is empty".into()));
    }
    if !spec.join.is_connected() {
        return Err(DbError::DisconnectedJoin("join tree is not connected".into()));
    }
    for col in spec.referenced_columns() {
        if !spec.join.contains(col.table) {
            return Err(DbError::InvalidQuery(format!(
                "column {} is not covered by the FROM clause",
                db.schema().qualified_name(col)
            )));
        }
    }
    for p in &spec.predicates {
        if p.is_aggregate() {
            return Err(DbError::InvalidQuery(
                "aggregated predicate in WHERE clause (belongs in HAVING)".into(),
            ));
        }
        if p.col.is_none() {
            return Err(DbError::InvalidQuery("WHERE predicate without a column".into()));
        }
    }
    for h in &spec.having {
        if !h.is_aggregate() {
            return Err(DbError::InvalidQuery("HAVING predicate must be aggregated".into()));
        }
    }
    if let Some(OrderSpec { key: OrderKey::Aggregate(..), .. }) = spec.order_by {
        // Aggregate ordering needs a grouping context (possibly the implicit global group).
    }
    Ok(())
}

/// Join all tables of the join tree with hash joins along FK edges.
fn join_tables(db: &Database, spec: &SelectSpec) -> DbResult<Joined> {
    let schema = db.schema();
    let mut col_pos: HashMap<ColumnId, usize> = HashMap::new();
    let mut rows: Vec<Vec<Value>> = Vec::new();

    // Seed with the first table.
    let first = spec.join.tables[0];
    let first_cols = schema.table(first).columns.len();
    for ci in 0..first_cols {
        col_pos.insert(ColumnId { table: first, column: ci }, ci);
    }
    rows.extend(db.table_data(first).rows.iter().map(|r| r.0.clone()));

    let mut joined_tables = vec![first];
    let mut remaining_edges = spec.join.edges.clone();

    while joined_tables.len() < spec.join.tables.len() {
        // Find an edge connecting a joined table with an unjoined one.
        let Some(pos) = remaining_edges.iter().position(|e| {
            let (a, b) = e.tables();
            joined_tables.contains(&a) != joined_tables.contains(&b)
        }) else {
            return Err(DbError::DisconnectedJoin(
                "no join edge connects the remaining tables".into(),
            ));
        };
        let edge = remaining_edges.remove(pos);
        let (a, b) = edge.tables();
        let (new_table, joined_col, new_col) = if joined_tables.contains(&a) {
            (
                b,
                if edge.fk.from.table == a { edge.fk.from } else { edge.fk.to },
                if edge.fk.from.table == b { edge.fk.from } else { edge.fk.to },
            )
        } else {
            (
                a,
                if edge.fk.from.table == b { edge.fk.from } else { edge.fk.to },
                if edge.fk.from.table == a { edge.fk.from } else { edge.fk.to },
            )
        };

        // Build a hash table over the new table's join column.
        let mut hash: HashMap<String, Vec<usize>> = HashMap::new();
        let new_rows = &db.table_data(new_table).rows;
        for (ri, row) in new_rows.iter().enumerate() {
            let v = &row.0[new_col.column];
            if !v.is_null() {
                hash.entry(v.group_key()).or_default().push(ri);
            }
        }

        // Extend the combined rows.
        let offset = col_pos.len();
        let new_cols = schema.table(new_table).columns.len();
        for ci in 0..new_cols {
            col_pos.insert(ColumnId { table: new_table, column: ci }, offset + ci);
        }
        let joined_pos = col_pos[&joined_col];
        let mut out = Vec::with_capacity(rows.len());
        for row in rows {
            let key = row[joined_pos].group_key();
            if row[joined_pos].is_null() {
                continue;
            }
            if let Some(matches) = hash.get(&key) {
                for &ri in matches {
                    let mut combined = row.clone();
                    combined.extend(new_rows[ri].0.iter().cloned());
                    out.push(combined);
                }
            }
        }
        rows = out;
        joined_tables.push(new_table);
    }

    Ok(Joined { col_pos, rows })
}

/// Evaluate a non-aggregated predicate against one combined row.
fn eval_predicate(joined: &Joined, row: &[Value], pred: &Predicate) -> bool {
    let col = pred.col.expect("WHERE predicate has a column");
    let pos = joined.col_pos[&col];
    compare(&row[pos], pred.op, &pred.value, pred.value2.as_ref())
}

/// Apply a comparison operator.
fn compare(lhs: &Value, op: CmpOp, rhs: &Value, rhs2: Option<&Value>) -> bool {
    use std::cmp::Ordering::*;
    match op {
        CmpOp::Eq => lhs.sql_eq(rhs),
        CmpOp::Ne => !lhs.is_null() && !rhs.is_null() && !lhs.sql_eq(rhs),
        CmpOp::Lt => matches!(lhs.sql_cmp(rhs), Some(Less)),
        CmpOp::Le => matches!(lhs.sql_cmp(rhs), Some(Less | Equal)),
        CmpOp::Gt => matches!(lhs.sql_cmp(rhs), Some(Greater)),
        CmpOp::Ge => matches!(lhs.sql_cmp(rhs), Some(Greater | Equal)),
        CmpOp::Like => match rhs {
            Value::Text(p) => lhs.sql_like(p),
            _ => false,
        },
        CmpOp::Between => {
            let hi = rhs2.unwrap_or(rhs);
            matches!(lhs.sql_cmp(rhs), Some(Greater | Equal))
                && matches!(lhs.sql_cmp(hi), Some(Less | Equal))
        }
    }
}

/// Row indices surviving the WHERE clause.
fn filter_rows(joined: &Joined, spec: &SelectSpec) -> Vec<usize> {
    (0..joined.rows.len())
        .filter(|&ri| {
            let row = &joined.rows[ri];
            if spec.predicates.is_empty() {
                return true;
            }
            match spec.predicate_op {
                LogicalOp::And => spec.predicates.iter().all(|p| eval_predicate(joined, row, p)),
                LogicalOp::Or => spec.predicates.iter().any(|p| eval_predicate(joined, row, p)),
            }
        })
        .collect()
}

/// Compute an aggregate over a set of rows.
fn aggregate(joined: &Joined, rows: &[usize], agg: AggFunc, col: Option<ColumnId>) -> Value {
    let values: Vec<&Value> = match col {
        Some(c) => {
            let pos = joined.col_pos[&c];
            rows.iter().map(|&ri| &joined.rows[ri][pos]).filter(|v| !v.is_null()).collect()
        }
        None => Vec::new(),
    };
    match agg {
        AggFunc::Count => {
            if col.is_none() {
                Value::int(rows.len() as i64)
            } else {
                Value::int(values.len() as i64)
            }
        }
        AggFunc::Sum => {
            let sum: f64 = values.iter().filter_map(|v| v.as_number()).sum();
            if values.is_empty() {
                Value::Null
            } else {
                Value::Number(sum)
            }
        }
        AggFunc::Avg => {
            let nums: Vec<f64> = values.iter().filter_map(|v| v.as_number()).collect();
            if nums.is_empty() {
                Value::Null
            } else {
                Value::Number(nums.iter().sum::<f64>() / nums.len() as f64)
            }
        }
        AggFunc::Min => {
            values.iter().cloned().cloned().min_by(|a, b| a.total_cmp(b)).unwrap_or(Value::Null)
        }
        AggFunc::Max => {
            values.iter().cloned().cloned().max_by(|a, b| a.total_cmp(b)).unwrap_or(Value::Null)
        }
    }
}

/// Evaluate a HAVING predicate over a group.
fn eval_having(joined: &Joined, rows: &[usize], pred: &Predicate) -> bool {
    let agg = pred.agg.expect("HAVING predicate is aggregated");
    let v = aggregate(joined, rows, agg, pred.col);
    compare(&v, pred.op, &pred.value, pred.value2.as_ref())
}

/// Build output records for grouped queries.
fn group_records(joined: &Joined, filtered: Vec<usize>, spec: &SelectSpec) -> Vec<Record> {
    // Partition the filtered rows into groups.
    let mut groups: Vec<(Vec<usize>,)> = Vec::new();
    if spec.group_by.is_empty() {
        groups.push((filtered,));
    } else {
        let mut by_key: HashMap<String, Vec<usize>> = HashMap::new();
        let mut order: Vec<String> = Vec::new();
        for ri in filtered {
            let key: String = spec
                .group_by
                .iter()
                .map(|c| joined.rows[ri][joined.col_pos[c]].group_key())
                .collect::<Vec<_>>()
                .join("\u{1}");
            if !by_key.contains_key(&key) {
                order.push(key.clone());
            }
            by_key.entry(key).or_default().push(ri);
        }
        for key in order {
            groups.push((by_key.remove(&key).expect("group key present"),));
        }
    }

    let mut records = Vec::with_capacity(groups.len());
    for (rows,) in groups {
        // With an empty global group, only COUNT produces a row in real SQL when
        // there is no GROUP BY; we keep that behaviour.
        if rows.is_empty() && !spec.group_by.is_empty() {
            continue;
        }
        if !spec.having.iter().all(|h| eval_having(joined, &rows, h)) {
            continue;
        }
        let projected: Vec<Value> =
            spec.select.iter().map(|item| project_item(joined, &rows, item)).collect();
        let order_key = spec.order_by.map(|o| match o.key {
            OrderKey::Column(c) => rows
                .first()
                .map(|&ri| joined.rows[ri][joined.col_pos[&c]].clone())
                .unwrap_or(Value::Null),
            OrderKey::Aggregate(agg, col) => aggregate(joined, &rows, agg, col),
        });
        records.push(Record { projected, order_key });
    }
    records
}

/// Project one SELECT item for a group (or a single-row "group").
fn project_item(joined: &Joined, rows: &[usize], item: &SelectItem) -> Value {
    match (item.agg, item.col) {
        (Some(agg), col) => aggregate(joined, rows, agg, col),
        (None, Some(c)) => rows
            .first()
            .map(|&ri| joined.rows[ri][joined.col_pos[&c]].clone())
            .unwrap_or(Value::Null),
        (None, None) => Value::Null,
    }
}

/// Build output records for non-grouped queries.
fn plain_records(joined: &Joined, filtered: Vec<usize>, spec: &SelectSpec) -> Vec<Record> {
    filtered
        .into_iter()
        .map(|ri| {
            let row = std::slice::from_ref(&ri);
            let projected: Vec<Value> =
                spec.select.iter().map(|item| project_item(joined, row, item)).collect();
            let order_key = spec.order_by.map(|o| match o.key {
                OrderKey::Column(c) => joined.rows[ri][joined.col_pos[&c]].clone(),
                OrderKey::Aggregate(agg, col) => aggregate(joined, row, agg, col),
            });
            Record { projected, order_key }
        })
        .collect()
}

/// Apply DISTINCT, ORDER BY and LIMIT and attach headers.
fn finalize(db: &Database, spec: &SelectSpec, mut records: Vec<Record>) -> DbResult<ResultSet> {
    if spec.distinct {
        let mut seen: HashMap<String, ()> = HashMap::new();
        records.retain(|r| {
            let key: String =
                r.projected.iter().map(Value::group_key).collect::<Vec<_>>().join("\u{1}");
            seen.insert(key, ()).is_none()
        });
    }
    if let Some(order) = spec.order_by {
        records.sort_by(|a, b| {
            let ka = a.order_key.as_ref().unwrap_or(&Value::Null);
            let kb = b.order_key.as_ref().unwrap_or(&Value::Null);
            let ord = ka.total_cmp(kb);
            if order.desc {
                ord.reverse()
            } else {
                ord
            }
        });
    }
    if let Some(limit) = spec.limit {
        records.truncate(limit);
    }

    let schema = db.schema();
    let mut columns = Vec::with_capacity(spec.select.len());
    let mut types = Vec::with_capacity(spec.select.len());
    for item in &spec.select {
        match (item.agg, item.col) {
            (Some(agg), Some(c)) => {
                columns.push(format!("{agg}({})", schema.qualified_name(c)));
                types.push(agg.result_type(Some(schema.column(c).dtype)));
            }
            (Some(agg), None) => {
                columns.push(format!("{agg}(*)"));
                types.push(DataType::Number);
            }
            (None, Some(c)) => {
                columns.push(schema.qualified_name(c));
                types.push(schema.column(c).dtype);
            }
            (None, None) => {
                return Err(DbError::InvalidQuery(
                    "SELECT item with neither aggregate nor column".into(),
                ))
            }
        }
    }

    Ok(ResultSet { columns, types, rows: records.into_iter().map(|r| Row(r.projected)).collect() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join_graph::{JoinGraph, JoinTree};
    use crate::schema::{ColumnDef, Schema, TableDef};

    /// Build the movie database from the paper's motivating example.
    fn movie_db() -> Database {
        let mut s = Schema::new("movies");
        s.add_table(TableDef::new(
            "actor",
            vec![
                ColumnDef::number("aid"),
                ColumnDef::text("name"),
                ColumnDef::number("birth_yr"),
                ColumnDef::text("gender"),
            ],
            Some(0),
        ));
        s.add_table(TableDef::new(
            "movies",
            vec![ColumnDef::number("mid"), ColumnDef::text("name"), ColumnDef::number("year")],
            Some(0),
        ));
        s.add_table(TableDef::new(
            "starring",
            vec![ColumnDef::number("aid"), ColumnDef::number("mid")],
            None,
        ));
        s.add_foreign_key("starring", "aid", "actor", "aid").unwrap();
        s.add_foreign_key("starring", "mid", "movies", "mid").unwrap();
        let mut db = Database::new(s).unwrap();
        db.insert_all(
            "actor",
            vec![
                vec![
                    Value::int(1),
                    Value::text("Tom Hanks"),
                    Value::int(1956),
                    Value::text("male"),
                ],
                vec![
                    Value::int(2),
                    Value::text("Sandra Bullock"),
                    Value::int(1964),
                    Value::text("female"),
                ],
                vec![
                    Value::int(3),
                    Value::text("Brad Pitt"),
                    Value::int(1963),
                    Value::text("male"),
                ],
            ],
        )
        .unwrap();
        db.insert_all(
            "movies",
            vec![
                vec![Value::int(10), Value::text("Forrest Gump"), Value::int(1994)],
                vec![Value::int(11), Value::text("Gravity"), Value::int(2013)],
                vec![Value::int(12), Value::text("Fight Club"), Value::int(1999)],
            ],
        )
        .unwrap();
        db.insert_all(
            "starring",
            vec![
                vec![Value::int(1), Value::int(10)],
                vec![Value::int(2), Value::int(11)],
                vec![Value::int(3), Value::int(12)],
            ],
        )
        .unwrap();
        db.rebuild_index();
        db
    }

    fn col(db: &Database, t: &str, c: &str) -> ColumnId {
        db.schema().column_id(t, c).unwrap()
    }

    #[test]
    fn simple_projection() {
        let db = movie_db();
        let spec = SelectSpec {
            select: vec![SelectItem::column(col(&db, "actor", "name"))],
            join: JoinTree::single(db.schema().table_id("actor").unwrap()),
            ..Default::default()
        };
        let rs = execute(&db, &spec).unwrap();
        assert_eq!(rs.len(), 3);
        assert_eq!(rs.columns, vec!["actor.name".to_string()]);
        assert_eq!(rs.types, vec![DataType::Text]);
    }

    #[test]
    fn where_filter_and_or() {
        let db = movie_db();
        let year = col(&db, "movies", "year");
        let mut spec = SelectSpec {
            select: vec![SelectItem::column(col(&db, "movies", "name"))],
            join: JoinTree::single(db.schema().table_id("movies").unwrap()),
            predicates: vec![
                Predicate::new(year, CmpOp::Lt, Value::int(1995)),
                Predicate::new(year, CmpOp::Gt, Value::int(2000)),
            ],
            predicate_op: LogicalOp::Or,
            ..Default::default()
        };
        let rs = execute(&db, &spec).unwrap();
        assert_eq!(rs.len(), 2); // Forrest Gump and Gravity
        spec.predicate_op = LogicalOp::And;
        let rs = execute(&db, &spec).unwrap();
        assert_eq!(rs.len(), 0);
    }

    #[test]
    fn three_way_join() {
        let db = movie_db();
        let schema = db.schema();
        let graph = JoinGraph::new(schema);
        let join = graph
            .steiner_tree(&[schema.table_id("actor").unwrap(), schema.table_id("movies").unwrap()])
            .unwrap();
        let spec = SelectSpec {
            select: vec![
                SelectItem::column(col(&db, "movies", "name")),
                SelectItem::column(col(&db, "actor", "name")),
            ],
            join,
            predicates: vec![Predicate::new(
                col(&db, "actor", "name"),
                CmpOp::Eq,
                Value::text("Tom Hanks"),
            )],
            ..Default::default()
        };
        let rs = execute(&db, &spec).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0].0[0], Value::text("Forrest Gump"));
    }

    #[test]
    fn group_by_with_count_and_having() {
        let db = movie_db();
        let schema = db.schema();
        let graph = JoinGraph::new(schema);
        let join = graph
            .steiner_tree(&[
                schema.table_id("actor").unwrap(),
                schema.table_id("starring").unwrap(),
            ])
            .unwrap();
        let gender = col(&db, "actor", "gender");
        let spec = SelectSpec {
            select: vec![SelectItem::column(gender), SelectItem::count_star()],
            join,
            group_by: vec![gender],
            having: vec![Predicate::having(AggFunc::Count, None, CmpOp::Ge, Value::int(2))],
            ..Default::default()
        };
        let rs = execute(&db, &spec).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0].0[0], Value::text("male"));
        assert_eq!(rs.rows[0].0[1], Value::int(2));
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let db = movie_db();
        let spec = SelectSpec {
            select: vec![SelectItem::count_star()],
            join: JoinTree::single(db.schema().table_id("movies").unwrap()),
            ..Default::default()
        };
        let rs = execute(&db, &spec).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0].0[0], Value::int(3));
    }

    #[test]
    fn order_by_and_limit() {
        let db = movie_db();
        let year = col(&db, "movies", "year");
        let spec = SelectSpec {
            select: vec![SelectItem::column(col(&db, "movies", "name"))],
            join: JoinTree::single(db.schema().table_id("movies").unwrap()),
            order_by: Some(OrderSpec { key: OrderKey::Column(year), desc: true }),
            limit: Some(1),
            ..Default::default()
        };
        let rs = execute(&db, &spec).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0].0[0], Value::text("Gravity"));
    }

    #[test]
    fn order_by_aggregate() {
        let db = movie_db();
        let schema = db.schema();
        let graph = JoinGraph::new(schema);
        let join = graph
            .steiner_tree(&[
                schema.table_id("actor").unwrap(),
                schema.table_id("starring").unwrap(),
            ])
            .unwrap();
        let gender = col(&db, "actor", "gender");
        let spec = SelectSpec {
            select: vec![SelectItem::column(gender), SelectItem::count_star()],
            join,
            group_by: vec![gender],
            order_by: Some(OrderSpec {
                key: OrderKey::Aggregate(AggFunc::Count, None),
                desc: true,
            }),
            ..Default::default()
        };
        let rs = execute(&db, &spec).unwrap();
        assert_eq!(rs.rows[0].0[0], Value::text("male"));
        assert_eq!(rs.rows[1].0[0], Value::text("female"));
    }

    #[test]
    fn distinct_removes_duplicates() {
        let db = movie_db();
        let gender = col(&db, "actor", "gender");
        let spec = SelectSpec {
            select: vec![SelectItem::column(gender)],
            distinct: true,
            join: JoinTree::single(db.schema().table_id("actor").unwrap()),
            ..Default::default()
        };
        let rs = execute(&db, &spec).unwrap();
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn aggregates_min_max_sum_avg() {
        let db = movie_db();
        let year = col(&db, "movies", "year");
        let spec = SelectSpec {
            select: vec![
                SelectItem::aggregate(AggFunc::Min, year),
                SelectItem::aggregate(AggFunc::Max, year),
                SelectItem::aggregate(AggFunc::Sum, year),
                SelectItem::aggregate(AggFunc::Avg, year),
                SelectItem::aggregate(AggFunc::Count, year),
            ],
            join: JoinTree::single(db.schema().table_id("movies").unwrap()),
            ..Default::default()
        };
        let rs = execute(&db, &spec).unwrap();
        assert_eq!(rs.rows[0].0[0], Value::int(1994));
        assert_eq!(rs.rows[0].0[1], Value::int(2013));
        assert_eq!(rs.rows[0].0[2], Value::int(1994 + 2013 + 1999));
        assert_eq!(rs.rows[0].0[4], Value::int(3));
        let avg = rs.rows[0].0[3].as_number().unwrap();
        assert!((avg - 2002.0).abs() < 1.0);
    }

    #[test]
    fn between_and_like_predicates() {
        let db = movie_db();
        let year = col(&db, "movies", "year");
        let name = col(&db, "movies", "name");
        let spec = SelectSpec {
            select: vec![SelectItem::column(name)],
            join: JoinTree::single(db.schema().table_id("movies").unwrap()),
            predicates: vec![Predicate::between(year, Value::int(1990), Value::int(2000))],
            ..Default::default()
        };
        assert_eq!(execute(&db, &spec).unwrap().len(), 2);

        let spec = SelectSpec {
            select: vec![SelectItem::column(name)],
            join: JoinTree::single(db.schema().table_id("movies").unwrap()),
            predicates: vec![Predicate::new(name, CmpOp::Like, Value::text("%club%"))],
            ..Default::default()
        };
        let rs = execute(&db, &spec).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0].0[0], Value::text("Fight Club"));
    }

    #[test]
    fn invalid_queries_rejected() {
        let db = movie_db();
        // Empty SELECT.
        let spec = SelectSpec {
            join: JoinTree::single(db.schema().table_id("movies").unwrap()),
            ..Default::default()
        };
        assert!(execute(&db, &spec).is_err());
        // Column not covered by FROM.
        let spec = SelectSpec {
            select: vec![SelectItem::column(col(&db, "actor", "name"))],
            join: JoinTree::single(db.schema().table_id("movies").unwrap()),
            ..Default::default()
        };
        assert!(matches!(execute(&db, &spec), Err(DbError::InvalidQuery(_))));
    }

    #[test]
    fn result_table_rendering() {
        let db = movie_db();
        let spec = SelectSpec {
            select: vec![SelectItem::column(col(&db, "movies", "name"))],
            join: JoinTree::single(db.schema().table_id("movies").unwrap()),
            ..Default::default()
        };
        let rs = execute(&db, &spec).unwrap();
        let table = rs.to_table_string(2);
        assert!(table.contains("movies.name"));
        assert!(table.contains("more rows"));
    }
}
