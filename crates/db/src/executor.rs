//! Streaming operator execution of [`SelectSpec`] queries against a
//! [`Database`].
//!
//! # The operator pipeline
//!
//! A query runs as a pull-based pipeline of textbook SPJA operators (the full
//! prose version of this section, with the limit-pushdown rules and the
//! determinism contract, lives in `docs/EXECUTOR.md`):
//!
//! ```text
//!   scan(T₀) ──► ⋈ hash(T₁) ──► … ──► ⋈ hash(Tₙ) ──► σ WHERE
//!        │ (probe side streamed;  build sides hashed up front)
//!        ▼
//!   ┌─ ungrouped ─────────────────────┐  ┌─ grouped ──────────────────────┐
//!   │ π project → DISTINCT → LIMIT k  │  │ γ group/agg → HAVING → π → sort│
//!   │ (stops pulling at k survivors)  │  │ (drains the full input)        │
//!   └─────────────────────────────────┘  └────────────────────────────────┘
//! ```
//!
//! Two physical strategies implement that plan:
//!
//! * **Streaming** — the probe side of the join chain is pulled row by row
//!   and each operator forwards rows as they survive, so a `LIMIT k` query
//!   (most prominently the verifier's `SELECT … LIMIT 1` probes) stops
//!   scanning as soon as `k` output rows exist. **Limit pushdown** applies
//!   when the query has no aggregation and either no `ORDER BY` or an
//!   `ORDER BY` that the pipeline order already satisfies (the sort key is a
//!   column of the probe-side table whose stored values are already sorted
//!   the requested way — see [`Database::column_is_sorted`]).
//! * **Materializing** — grouped, sorted-by-unsorted-columns, or unlimited
//!   queries drain the pipeline into an intermediate relation. Large joins
//!   are evaluated as **partitioned parallel hash joins**: the build side is
//!   distributed across `join_partitions` hash partitions in one sequential
//!   pass, the probe side is split into contiguous chunks probed on scoped
//!   threads, and
//!   chunk outputs are concatenated in chunk (i.e. original row) order — so
//!   the produced row order is byte-identical to the single-threaded join
//!   for every partition count. Below [`ExecOptions::parallel_join_threshold`]
//!   probe rows the single-threaded join is used outright.
//!
//! # Determinism contract
//!
//! For a fixed database and spec, [`execute`] and [`execute_with`] produce
//! the same [`ResultSet`] — bit for bit — regardless of `join_partitions`,
//! the parallel threshold, or whether the streaming or materializing
//! strategy ran. Higher layers (candidate emission, the probe memo cache)
//! rely on this.
//!
//! # Observability
//!
//! [`execute_with`] reports [`ExecMetrics`]: `rows_scanned` counts base-table
//! rows pulled plus join rows produced, `rows_short_circuited` counts
//! probe-side rows the pipeline never had to pull because the limit was
//! already satisfied, and `exact` says whether the produced rows are the
//! spec's complete result (only a caller-supplied [`ExecOptions::row_budget`]
//! can truncate it). The verifier aggregates these per synthesis run into
//! `EnumerationStats`.

use crate::database::{Database, Row};
use crate::error::{DbError, DbResult};
use crate::query::{
    AggFunc, CmpOp, LogicalOp, OrderKey, OrderSpec, Predicate, SelectItem, SelectSpec,
};
use crate::schema::{ColumnId, TableId};
use crate::types::{DataType, Value};
use std::cell::Cell;
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};

/// The result of executing a query: column headers plus rows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResultSet {
    /// Output column names (qualified, e.g. `actor.name` or `COUNT(*)`).
    pub columns: Vec<String>,
    /// Output column types.
    pub types: Vec<DataType>,
    /// Output rows.
    pub rows: Vec<Row>,
}

impl ResultSet {
    /// Number of output rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the result set is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Values of one output column.
    pub fn column(&self, idx: usize) -> impl Iterator<Item = &Value> {
        self.rows.iter().map(move |r| &r.0[idx])
    }

    /// Render the result set as a compact ASCII table (used by the examples).
    /// Cells are written straight into the output buffer; no intermediate
    /// per-row string vectors are allocated.
    pub fn to_table_string(&self, max_rows: usize) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(" | "));
        let header_len = out.len();
        out.push('\n');
        out.push_str(&"-".repeat(header_len.max(4)));
        out.push('\n');
        for row in self.rows.iter().take(max_rows) {
            for (i, v) in row.0.iter().enumerate() {
                if i > 0 {
                    out.push_str(" | ");
                }
                let _ = write!(out, "{v}");
            }
            out.push('\n');
        }
        if self.rows.len() > max_rows {
            let _ = writeln!(out, "... ({} more rows)", self.rows.len() - max_rows);
        }
        out
    }
}

/// Default probe-side row count below which a join is evaluated
/// single-threaded (spawning scoped threads costs more than it saves).
pub const PARALLEL_JOIN_THRESHOLD: usize = 4096;

/// Physical execution knobs for [`execute_with`]. [`execute`] uses the
/// database's defaults ([`Database::exec_options`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Stop producing output rows beyond this budget, even if the spec has a
    /// larger (or no) `LIMIT`. The result is then a prefix of the spec's
    /// result and [`ExecMetrics::exact`] reports `false` when rows were cut.
    pub row_budget: Option<usize>,
    /// Allow the streaming strategy to stop pulling input once the effective
    /// limit is satisfied. Disabling this forces the materializing strategy
    /// (useful as the "old executor" baseline in benches and tests).
    pub limit_pushdown: bool,
    /// Number of hash partitions (and scoped threads) for large
    /// materialized joins. `1` disables parallelism.
    pub join_partitions: usize,
    /// Probe-side row count at which the partitioned parallel join kicks in.
    pub parallel_join_threshold: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            row_budget: None,
            limit_pushdown: true,
            join_partitions: 1,
            parallel_join_threshold: PARALLEL_JOIN_THRESHOLD,
        }
    }
}

/// Observability counters for one execution (see the module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecMetrics {
    /// Base-table rows pulled into the pipeline plus join rows produced.
    pub rows_scanned: u64,
    /// Probe-side rows left unscanned because the limit was already satisfied.
    pub rows_short_circuited: u64,
    /// Whether the produced rows are known to be the spec's complete result.
    /// Only an [`ExecOptions::row_budget`] can make this `false`, and then
    /// pessimistically: a streaming run that stops *at* the budget reports
    /// `false` without checking whether the input happened to be exhausted
    /// exactly there (probing on would forfeit the early termination).
    pub exact: bool,
    /// Whether the streaming (early-terminating) strategy ran.
    pub streamed: bool,
}

/// A [`ResultSet`] together with the [`ExecMetrics`] of producing it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExecOutcome {
    /// The produced rows.
    pub result: ResultSet,
    /// How they were produced.
    pub metrics: ExecMetrics,
}

/// Execute a query against a database with the database's default options.
pub fn execute(db: &Database, spec: &SelectSpec) -> DbResult<ResultSet> {
    Ok(execute_with(db, spec, &db.exec_options())?.result)
}

/// Execute a query with explicit physical options, reporting
/// [`ExecMetrics`] alongside the rows.
///
/// This is the streaming entry point: a `LIMIT k` query (or an external
/// [`ExecOptions::row_budget`]) stops scanning as soon as `k` rows survive.
///
/// ```
/// use duoquest_db::{
///     execute_with, ColumnDef, Database, ExecOptions, JoinTree, Schema, SelectItem,
///     SelectSpec, TableDef, Value,
/// };
///
/// let mut schema = Schema::new("demo");
/// schema.add_table(TableDef::new("t", vec![ColumnDef::number("id")], Some(0)));
/// let mut db = Database::new(schema).unwrap();
/// db.insert_all("t", (0..100).map(|i| vec![Value::int(i)])).unwrap();
/// db.rebuild_index();
///
/// let spec = SelectSpec {
///     select: vec![SelectItem::column(db.schema().column_id("t", "id").unwrap())],
///     join: JoinTree::single(db.schema().table_id("t").unwrap()),
///     limit: Some(1),
///     ..Default::default()
/// };
/// let out = execute_with(&db, &spec, &ExecOptions::default()).unwrap();
/// assert_eq!(out.result.len(), 1);
/// assert!(out.metrics.exact, "LIMIT is the spec's own semantics");
/// assert!(out.metrics.rows_scanned < 100, "stopped after the first row");
/// assert_eq!(out.metrics.rows_short_circuited, 99);
/// ```
pub fn execute_with(db: &Database, spec: &SelectSpec, opts: &ExecOptions) -> DbResult<ExecOutcome> {
    validate(db, spec)?;
    let plan = plan_joins(db, spec)?;
    match streaming_cap(db, spec, opts, &plan) {
        Some(cap) => run_streaming(db, spec, &plan, cap),
        None => run_materialized(db, spec, plan, opts),
    }
}

/// The joined intermediate relation: a mapping from column ids to positions in
/// the combined row, plus the combined rows themselves.
struct Joined {
    col_pos: HashMap<ColumnId, usize>,
    rows: Vec<Vec<Value>>,
}

/// One output record before distinct/sort/limit: projected values plus the sort key.
struct Record {
    projected: Vec<Value>,
    order_key: Option<Value>,
}

fn validate(db: &Database, spec: &SelectSpec) -> DbResult<()> {
    if spec.select.is_empty() {
        return Err(DbError::InvalidQuery("SELECT clause is empty".into()));
    }
    if spec.join.tables.is_empty() {
        return Err(DbError::InvalidQuery("FROM clause is empty".into()));
    }
    if !spec.join.is_connected() {
        return Err(DbError::DisconnectedJoin("join tree is not connected".into()));
    }
    for col in spec.referenced_columns() {
        if !spec.join.contains(col.table) {
            return Err(DbError::InvalidQuery(format!(
                "column {} is not covered by the FROM clause",
                db.schema().qualified_name(col)
            )));
        }
    }
    for p in &spec.predicates {
        if p.is_aggregate() {
            return Err(DbError::InvalidQuery(
                "aggregated predicate in WHERE clause (belongs in HAVING)".into(),
            ));
        }
        if p.col.is_none() {
            return Err(DbError::InvalidQuery("WHERE predicate without a column".into()));
        }
    }
    for h in &spec.having {
        if !h.is_aggregate() {
            return Err(DbError::InvalidQuery("HAVING predicate must be aggregated".into()));
        }
    }
    for item in &spec.select {
        if item.agg.is_none() && item.col.is_none() {
            return Err(DbError::InvalidQuery(
                "SELECT item with neither aggregate nor column".into(),
            ));
        }
    }
    Ok(())
}

/// One hash-join step of the plan: probe the combined row at `probe_pos`
/// against a hash table over `build_col` of `table`.
struct JoinStep {
    table: TableId,
    probe_pos: usize,
    build_col: usize,
}

/// The logical join plan shared by both physical strategies, so their row
/// order is identical by construction: seed with the first FROM table, then
/// repeatedly take the first remaining edge connecting a joined table to an
/// unjoined one.
struct JoinPlan {
    first: TableId,
    col_pos: HashMap<ColumnId, usize>,
    steps: Vec<JoinStep>,
}

fn plan_joins(db: &Database, spec: &SelectSpec) -> DbResult<JoinPlan> {
    let schema = db.schema();
    let mut col_pos: HashMap<ColumnId, usize> = HashMap::new();

    let first = spec.join.tables[0];
    for ci in 0..schema.table(first).columns.len() {
        col_pos.insert(ColumnId { table: first, column: ci }, ci);
    }

    let mut steps = Vec::new();
    let mut joined_tables = vec![first];
    let mut remaining_edges = spec.join.edges.clone();

    while joined_tables.len() < spec.join.tables.len() {
        let Some(pos) = remaining_edges.iter().position(|e| {
            let (a, b) = e.tables();
            joined_tables.contains(&a) != joined_tables.contains(&b)
        }) else {
            return Err(DbError::DisconnectedJoin(
                "no join edge connects the remaining tables".into(),
            ));
        };
        let edge = remaining_edges.remove(pos);
        let (a, b) = edge.tables();
        let (new_table, joined_col, new_col) = if joined_tables.contains(&a) {
            (
                b,
                if edge.fk.from.table == a { edge.fk.from } else { edge.fk.to },
                if edge.fk.from.table == b { edge.fk.from } else { edge.fk.to },
            )
        } else {
            (
                a,
                if edge.fk.from.table == b { edge.fk.from } else { edge.fk.to },
                if edge.fk.from.table == a { edge.fk.from } else { edge.fk.to },
            )
        };

        let offset = col_pos.len();
        for ci in 0..schema.table(new_table).columns.len() {
            col_pos.insert(ColumnId { table: new_table, column: ci }, offset + ci);
        }
        steps.push(JoinStep {
            table: new_table,
            probe_pos: col_pos[&joined_col],
            build_col: new_col.column,
        });
        joined_tables.push(new_table);
    }

    Ok(JoinPlan { first, col_pos, steps })
}

/// Number of output rows after which the streaming pipeline may stop pulling,
/// or `None` when the query must be fully materialized (aggregation, an
/// `ORDER BY` the pipeline order does not already satisfy, no limit at all,
/// or pushdown disabled).
fn streaming_cap(
    db: &Database,
    spec: &SelectSpec,
    opts: &ExecOptions,
    plan: &JoinPlan,
) -> Option<usize> {
    if !opts.limit_pushdown {
        return None;
    }
    if spec.has_aggregates() || !spec.group_by.is_empty() {
        return None;
    }
    let cap = match (spec.limit, opts.row_budget) {
        (Some(l), Some(b)) => l.min(b),
        (Some(l), None) => l,
        (None, Some(b)) => b,
        (None, None) => return None,
    };
    if let Some(OrderSpec { key, desc }) = spec.order_by {
        // The sort is a no-op exactly when the sort key is a probe-side
        // column whose stored order already satisfies it: join steps expand
        // each probe row in place and the final sort is stable, so the
        // pipeline order equals the sorted order byte for byte.
        let OrderKey::Column(col) = key else { return None };
        if col.table != plan.first || !db.column_is_sorted(col, desc) {
            return None;
        }
    }
    Some(cap)
}

/// Compound grouping/dedup key over a sequence of values, used identically
/// by the streaming DISTINCT, the batch DISTINCT of [`finalize`] and the
/// GROUP BY partitioning — one derivation, so the strategies cannot drift.
fn group_key_of<'v>(values: impl Iterator<Item = &'v Value>) -> String {
    values.map(Value::group_key).collect::<Vec<_>>().join("\u{1}")
}

/// Distribute one join step's build side into `partitions` hash tables (a
/// row's partition is the hash of its join key, so all rows of one key land
/// in one partition in row order). Both the single-map sequential join
/// ([`build_hash`]) and the partitioned parallel join feed from this, so the
/// NULL/key semantics of the build side cannot drift between them.
fn build_hash_partitioned(
    rows: &[Row],
    build_col: usize,
    partitions: usize,
) -> Vec<HashMap<String, Vec<usize>>> {
    let mut maps: Vec<HashMap<String, Vec<usize>>> =
        (0..partitions).map(|_| HashMap::new()).collect();
    for (ri, row) in rows.iter().enumerate() {
        let v = &row.0[build_col];
        if !v.is_null() {
            let key = v.group_key();
            let idx = if partitions == 1 { 0 } else { key_partition(&key, partitions) };
            maps[idx].entry(key).or_default().push(ri);
        }
    }
    maps
}

/// Build the single hash table over one join step's build column.
fn build_hash(rows: &[Row], build_col: usize) -> HashMap<String, Vec<usize>> {
    build_hash_partitioned(rows, build_col, 1).pop().expect("one partition requested")
}

/// The tail of the streaming pipeline: WHERE filter, projection, DISTINCT
/// and the output cap, fed one (borrowed) combined row at a time.
struct StreamSink<'a> {
    spec: &'a SelectSpec,
    col_pos: &'a HashMap<ColumnId, usize>,
    /// Plain projection positions (streaming never runs aggregated queries).
    proj: Vec<usize>,
    seen: HashSet<String>,
    rows_out: Vec<Row>,
    cap: usize,
}

impl StreamSink<'_> {
    /// Offer one combined row; returns `false` once the cap is reached and
    /// the pipeline must stop pulling.
    fn offer(&mut self, row: &[Value]) -> bool {
        if !row_passes(self.spec, self.col_pos, row) {
            return true;
        }
        let projected: Vec<Value> = self.proj.iter().map(|&p| row[p].clone()).collect();
        if self.spec.distinct && !self.seen.insert(group_key_of(projected.iter())) {
            return true;
        }
        self.rows_out.push(Row(projected));
        self.rows_out.len() < self.cap
    }
}

/// Streaming strategy: pull probe rows one at a time through the join chain,
/// WHERE filter, projection and DISTINCT, stopping at `cap` survivors.
fn run_streaming(
    db: &Database,
    spec: &SelectSpec,
    plan: &JoinPlan,
    cap: usize,
) -> DbResult<ExecOutcome> {
    let (columns, types) = headers(db, spec)?;

    let mut sink = StreamSink {
        spec,
        col_pos: &plan.col_pos,
        proj: spec
            .select
            .iter()
            .map(|item| plan.col_pos[&item.col.expect("validated: plain projection has a column")])
            .collect(),
        seen: HashSet::new(),
        rows_out: Vec::new(),
        cap,
    };

    let first_rows = &db.table_data(plan.first).rows;
    let first_len = first_rows.len() as u64;
    let mut build_scanned: u64 = 0;
    let mut first_scanned_n: u64 = 0;
    let mut produced_n: u64 = 0;
    let mut stopped_early = cap == 0 && first_len > 0;

    if cap > 0 && plan.steps.is_empty() {
        // Zero-join fast path (the dominant single-table probe shape):
        // filter and project straight from the borrowed storage rows — no
        // full-row clone ever happens, only the projected cells are copied.
        for r in first_rows {
            first_scanned_n += 1;
            if !sink.offer(&r.0) {
                stopped_early = true;
                break;
            }
        }
    } else if cap > 0 {
        // Build sides are fully hashed up front (as in the materializing
        // path); probe rows are cloned once into the join chain.
        let mut hashes: Vec<HashMap<String, Vec<usize>>> = Vec::with_capacity(plan.steps.len());
        for step in &plan.steps {
            let build_rows = &db.table_data(step.table).rows;
            build_scanned += build_rows.len() as u64;
            hashes.push(build_hash(build_rows, step.build_col));
        }

        let first_scanned = Cell::new(0u64);
        let produced = Cell::new(0u64);
        let fs = &first_scanned;
        let mut stream: Box<dyn Iterator<Item = Vec<Value>> + '_> =
            Box::new(first_rows.iter().map(move |r| {
                fs.set(fs.get() + 1);
                r.0.clone()
            }));
        for (step, hash) in plan.steps.iter().zip(hashes) {
            let build_rows = &db.table_data(step.table).rows;
            let probe_pos = step.probe_pos;
            let pr = &produced;
            stream = Box::new(stream.flat_map(move |row| {
                let mut out: Vec<Vec<Value>> = Vec::new();
                expand_probe_row(row, &hash, build_rows, probe_pos, &mut out);
                pr.set(pr.get() + out.len() as u64);
                out
            }));
        }
        for row in &mut stream {
            if !sink.offer(&row) {
                stopped_early = true;
                break;
            }
        }
        drop(stream);
        first_scanned_n = first_scanned.get();
        produced_n = produced.get();
    }

    // Stopping at the spec's own LIMIT is the spec's semantics; only a
    // tighter caller budget makes the result a (possibly) truncated prefix.
    let exact = !stopped_early || spec.limit == Some(cap);
    let metrics = ExecMetrics {
        rows_scanned: build_scanned + first_scanned_n + produced_n,
        rows_short_circuited: if stopped_early {
            first_len.saturating_sub(first_scanned_n)
        } else {
            0
        },
        exact,
        streamed: true,
    };
    Ok(ExecOutcome { result: ResultSet { columns, types, rows: sink.rows_out }, metrics })
}

/// Materializing strategy: evaluate the join chain into an intermediate
/// relation (with partitioned parallel hash joins above the threshold), then
/// filter, group/aggregate, project, sort and limit as one batch.
fn run_materialized(
    db: &Database,
    spec: &SelectSpec,
    plan: JoinPlan,
    opts: &ExecOptions,
) -> DbResult<ExecOutcome> {
    let mut scanned: u64 = 0;

    let first_rows = &db.table_data(plan.first).rows;
    scanned += first_rows.len() as u64;
    let mut rows: Vec<Vec<Value>> = first_rows.iter().map(|r| r.0.clone()).collect();
    for step in &plan.steps {
        let build_rows = &db.table_data(step.table).rows;
        scanned += build_rows.len() as u64;
        rows = join_step(rows, build_rows, step.probe_pos, step.build_col, opts);
        scanned += rows.len() as u64;
    }
    let joined = Joined { col_pos: plan.col_pos, rows };

    let filtered = filter_rows(&joined, spec);
    let grouped = spec.has_aggregates() || !spec.group_by.is_empty();
    let records = if grouped {
        group_records(&joined, filtered, spec)
    } else {
        plain_records(&joined, filtered, spec)
    };

    let mut result = finalize(db, spec, records)?;
    let mut exact = true;
    if let Some(budget) = opts.row_budget {
        if result.rows.len() > budget {
            result.rows.truncate(budget);
            exact = false;
        }
    }
    let metrics =
        ExecMetrics { rows_scanned: scanned, rows_short_circuited: 0, exact, streamed: false };
    Ok(ExecOutcome { result, metrics })
}

/// Shard index of a join key for the partitioned parallel join. Partitioning
/// is purely physical: every row of one key lands in one partition, so match
/// lists (and with them the output order) are independent of the count.
fn key_partition(key: &str, partitions: usize) -> usize {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut hasher);
    (hasher.finish() as usize) % partitions
}

/// One materialized hash-join step, parallel when the probe side is large.
fn join_step(
    left: Vec<Vec<Value>>,
    build_rows: &[Row],
    probe_pos: usize,
    build_col: usize,
    opts: &ExecOptions,
) -> Vec<Vec<Value>> {
    let partitions = opts.join_partitions.max(1);
    if partitions == 1 || left.len() < opts.parallel_join_threshold.max(1) {
        let hash = build_hash(build_rows, build_col);
        let mut out = Vec::with_capacity(left.len());
        for row in left {
            expand_probe_row(row, &hash, build_rows, probe_pos, &mut out);
        }
        return out;
    }

    // Build side: distribute every row into its hash partition in one
    // sequential pass (each key lands in exactly one partition, and scanning
    // in row order preserves the per-key match order of the global map).
    let maps = build_hash_partitioned(build_rows, build_col, partitions);

    // Probe side: contiguous owned chunks probed in parallel, concatenated
    // in chunk (original row) order — byte-identical to the sequential join.
    // Partitions are logical (a consumer may size them to the data); the
    // spawned threads are clamped to the machine's parallelism, which does
    // not affect the output order — chunking is independent of the maps.
    let threads =
        partitions.min(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)).max(1);
    let chunk_size = left.len().div_ceil(threads);
    let mut chunks: Vec<Vec<Vec<Value>>> = Vec::with_capacity(threads);
    let mut rest = left;
    while rest.len() > chunk_size {
        let tail = rest.split_off(chunk_size);
        chunks.push(rest);
        rest = tail;
    }
    chunks.push(rest);
    let outputs: Vec<Vec<Vec<Value>>> = std::thread::scope(|scope| {
        let maps = &maps;
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                scope.spawn(move || {
                    let mut out = Vec::with_capacity(chunk.len());
                    for row in chunk {
                        if let Some(matches) = probe_matches(&row, probe_pos, |key| {
                            &maps[key_partition(key, partitions)]
                        }) {
                            expand_matches(row, matches, build_rows, &mut out);
                        }
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("join probe worker panicked")).collect()
    });
    outputs.concat()
}

/// The build-side match list of one probe row, or `None` when its join key
/// is NULL or unmatched. `select` picks the hash table to consult (the
/// single global map, or the key's partition) — both probe loops share this
/// so the NULL/key semantics cannot drift between them.
fn probe_matches<'h>(
    row: &[Value],
    probe_pos: usize,
    select: impl FnOnce(&str) -> &'h HashMap<String, Vec<usize>>,
) -> Option<&'h [usize]> {
    if row[probe_pos].is_null() {
        return None;
    }
    let key = row[probe_pos].group_key();
    select(&key).get(&key).map(Vec::as_slice)
}

/// Append one probe row combined with each of its (non-empty) matches,
/// moving the row into the last match instead of cloning it once more.
fn expand_matches(
    row: Vec<Value>,
    matches: &[usize],
    build_rows: &[Row],
    out: &mut Vec<Vec<Value>>,
) {
    out.reserve(matches.len());
    for &ri in &matches[..matches.len() - 1] {
        let mut combined = row.clone();
        combined.extend(build_rows[ri].0.iter().cloned());
        out.push(combined);
    }
    let last = matches[matches.len() - 1];
    let mut combined = row;
    combined.extend(build_rows[last].0.iter().cloned());
    out.push(combined);
}

/// Expand one probe row against the (unpartitioned) build hash table.
fn expand_probe_row(
    row: Vec<Value>,
    hash: &HashMap<String, Vec<usize>>,
    build_rows: &[Row],
    probe_pos: usize,
    out: &mut Vec<Vec<Value>>,
) {
    if let Some(matches) = probe_matches(&row, probe_pos, |_| hash) {
        expand_matches(row, matches, build_rows, out);
    }
}

/// Whether one combined row survives the WHERE clause.
fn row_passes(spec: &SelectSpec, col_pos: &HashMap<ColumnId, usize>, row: &[Value]) -> bool {
    if spec.predicates.is_empty() {
        return true;
    }
    match spec.predicate_op {
        LogicalOp::And => spec.predicates.iter().all(|p| eval_predicate(col_pos, row, p)),
        LogicalOp::Or => spec.predicates.iter().any(|p| eval_predicate(col_pos, row, p)),
    }
}

/// Evaluate a non-aggregated predicate against one combined row.
fn eval_predicate(col_pos: &HashMap<ColumnId, usize>, row: &[Value], pred: &Predicate) -> bool {
    let col = pred.col.expect("WHERE predicate has a column");
    let pos = col_pos[&col];
    compare(&row[pos], pred.op, &pred.value, pred.value2.as_ref())
}

/// Apply a comparison operator.
fn compare(lhs: &Value, op: CmpOp, rhs: &Value, rhs2: Option<&Value>) -> bool {
    use std::cmp::Ordering::*;
    match op {
        CmpOp::Eq => lhs.sql_eq(rhs),
        CmpOp::Ne => !lhs.is_null() && !rhs.is_null() && !lhs.sql_eq(rhs),
        CmpOp::Lt => matches!(lhs.sql_cmp(rhs), Some(Less)),
        CmpOp::Le => matches!(lhs.sql_cmp(rhs), Some(Less | Equal)),
        CmpOp::Gt => matches!(lhs.sql_cmp(rhs), Some(Greater)),
        CmpOp::Ge => matches!(lhs.sql_cmp(rhs), Some(Greater | Equal)),
        CmpOp::Like => match rhs {
            Value::Text(p) => lhs.sql_like(p),
            _ => false,
        },
        CmpOp::Between => {
            let hi = rhs2.unwrap_or(rhs);
            matches!(lhs.sql_cmp(rhs), Some(Greater | Equal))
                && matches!(lhs.sql_cmp(hi), Some(Less | Equal))
        }
    }
}

/// Row indices surviving the WHERE clause.
fn filter_rows(joined: &Joined, spec: &SelectSpec) -> Vec<usize> {
    (0..joined.rows.len())
        .filter(|&ri| row_passes(spec, &joined.col_pos, &joined.rows[ri]))
        .collect()
}

/// Compute an aggregate over a set of rows.
fn aggregate(joined: &Joined, rows: &[usize], agg: AggFunc, col: Option<ColumnId>) -> Value {
    let values: Vec<&Value> = match col {
        Some(c) => {
            let pos = joined.col_pos[&c];
            rows.iter().map(|&ri| &joined.rows[ri][pos]).filter(|v| !v.is_null()).collect()
        }
        None => Vec::new(),
    };
    match agg {
        AggFunc::Count => {
            if col.is_none() {
                Value::int(rows.len() as i64)
            } else {
                Value::int(values.len() as i64)
            }
        }
        AggFunc::Sum => {
            let sum: f64 = values.iter().filter_map(|v| v.as_number()).sum();
            if values.is_empty() {
                Value::Null
            } else {
                Value::Number(sum)
            }
        }
        AggFunc::Avg => {
            let nums: Vec<f64> = values.iter().filter_map(|v| v.as_number()).collect();
            if nums.is_empty() {
                Value::Null
            } else {
                Value::Number(nums.iter().sum::<f64>() / nums.len() as f64)
            }
        }
        AggFunc::Min => {
            values.iter().cloned().cloned().min_by(|a, b| a.total_cmp(b)).unwrap_or(Value::Null)
        }
        AggFunc::Max => {
            values.iter().cloned().cloned().max_by(|a, b| a.total_cmp(b)).unwrap_or(Value::Null)
        }
    }
}

/// Evaluate a HAVING predicate over a group.
fn eval_having(joined: &Joined, rows: &[usize], pred: &Predicate) -> bool {
    let agg = pred.agg.expect("HAVING predicate is aggregated");
    let v = aggregate(joined, rows, agg, pred.col);
    compare(&v, pred.op, &pred.value, pred.value2.as_ref())
}

/// Build output records for grouped queries.
fn group_records(joined: &Joined, filtered: Vec<usize>, spec: &SelectSpec) -> Vec<Record> {
    // Partition the filtered rows into groups.
    let mut groups: Vec<(Vec<usize>,)> = Vec::new();
    if spec.group_by.is_empty() {
        groups.push((filtered,));
    } else {
        let mut by_key: HashMap<String, Vec<usize>> = HashMap::new();
        let mut order: Vec<String> = Vec::new();
        for ri in filtered {
            let key =
                group_key_of(spec.group_by.iter().map(|c| &joined.rows[ri][joined.col_pos[c]]));
            if !by_key.contains_key(&key) {
                order.push(key.clone());
            }
            by_key.entry(key).or_default().push(ri);
        }
        for key in order {
            groups.push((by_key.remove(&key).expect("group key present"),));
        }
    }

    let mut records = Vec::with_capacity(groups.len());
    for (rows,) in groups {
        // With an empty global group, only COUNT produces a row in real SQL when
        // there is no GROUP BY; we keep that behaviour.
        if rows.is_empty() && !spec.group_by.is_empty() {
            continue;
        }
        if !spec.having.iter().all(|h| eval_having(joined, &rows, h)) {
            continue;
        }
        let projected: Vec<Value> =
            spec.select.iter().map(|item| project_item(joined, &rows, item)).collect();
        let order_key = spec.order_by.map(|o| match o.key {
            OrderKey::Column(c) => rows
                .first()
                .map(|&ri| joined.rows[ri][joined.col_pos[&c]].clone())
                .unwrap_or(Value::Null),
            OrderKey::Aggregate(agg, col) => aggregate(joined, &rows, agg, col),
        });
        records.push(Record { projected, order_key });
    }
    records
}

/// Project one SELECT item for a group (or a single-row "group").
fn project_item(joined: &Joined, rows: &[usize], item: &SelectItem) -> Value {
    match (item.agg, item.col) {
        (Some(agg), col) => aggregate(joined, rows, agg, col),
        (None, Some(c)) => rows
            .first()
            .map(|&ri| joined.rows[ri][joined.col_pos[&c]].clone())
            .unwrap_or(Value::Null),
        (None, None) => Value::Null,
    }
}

/// Build output records for non-grouped queries.
fn plain_records(joined: &Joined, filtered: Vec<usize>, spec: &SelectSpec) -> Vec<Record> {
    filtered
        .into_iter()
        .map(|ri| {
            let row = std::slice::from_ref(&ri);
            let projected: Vec<Value> =
                spec.select.iter().map(|item| project_item(joined, row, item)).collect();
            let order_key = spec.order_by.map(|o| match o.key {
                OrderKey::Column(c) => joined.rows[ri][joined.col_pos[&c]].clone(),
                OrderKey::Aggregate(agg, col) => aggregate(joined, row, agg, col),
            });
            Record { projected, order_key }
        })
        .collect()
}

/// Output column names and types of a spec.
fn headers(db: &Database, spec: &SelectSpec) -> DbResult<(Vec<String>, Vec<DataType>)> {
    let schema = db.schema();
    let mut columns = Vec::with_capacity(spec.select.len());
    let mut types = Vec::with_capacity(spec.select.len());
    for item in &spec.select {
        match (item.agg, item.col) {
            (Some(agg), Some(c)) => {
                columns.push(format!("{agg}({})", schema.qualified_name(c)));
                types.push(agg.result_type(Some(schema.column(c).dtype)));
            }
            (Some(agg), None) => {
                columns.push(format!("{agg}(*)"));
                types.push(DataType::Number);
            }
            (None, Some(c)) => {
                columns.push(schema.qualified_name(c));
                types.push(schema.column(c).dtype);
            }
            (None, None) => {
                return Err(DbError::InvalidQuery(
                    "SELECT item with neither aggregate nor column".into(),
                ))
            }
        }
    }
    Ok((columns, types))
}

/// Apply DISTINCT, ORDER BY and LIMIT and attach headers.
fn finalize(db: &Database, spec: &SelectSpec, mut records: Vec<Record>) -> DbResult<ResultSet> {
    if spec.distinct {
        let mut seen: HashSet<String> = HashSet::new();
        records.retain(|r| seen.insert(group_key_of(r.projected.iter())));
    }
    if let Some(order) = spec.order_by {
        records.sort_by(|a, b| {
            let ka = a.order_key.as_ref().unwrap_or(&Value::Null);
            let kb = b.order_key.as_ref().unwrap_or(&Value::Null);
            let ord = ka.total_cmp(kb);
            if order.desc {
                ord.reverse()
            } else {
                ord
            }
        });
    }
    if let Some(limit) = spec.limit {
        records.truncate(limit);
    }

    let (columns, types) = headers(db, spec)?;
    Ok(ResultSet { columns, types, rows: records.into_iter().map(|r| Row(r.projected)).collect() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join_graph::{JoinGraph, JoinTree};
    use crate::schema::{ColumnDef, Schema, TableDef};

    /// Build the movie database from the paper's motivating example.
    fn movie_db() -> Database {
        let mut s = Schema::new("movies");
        s.add_table(TableDef::new(
            "actor",
            vec![
                ColumnDef::number("aid"),
                ColumnDef::text("name"),
                ColumnDef::number("birth_yr"),
                ColumnDef::text("gender"),
            ],
            Some(0),
        ));
        s.add_table(TableDef::new(
            "movies",
            vec![ColumnDef::number("mid"), ColumnDef::text("name"), ColumnDef::number("year")],
            Some(0),
        ));
        s.add_table(TableDef::new(
            "starring",
            vec![ColumnDef::number("aid"), ColumnDef::number("mid")],
            None,
        ));
        s.add_foreign_key("starring", "aid", "actor", "aid").unwrap();
        s.add_foreign_key("starring", "mid", "movies", "mid").unwrap();
        let mut db = Database::new(s).unwrap();
        db.insert_all(
            "actor",
            vec![
                vec![
                    Value::int(1),
                    Value::text("Tom Hanks"),
                    Value::int(1956),
                    Value::text("male"),
                ],
                vec![
                    Value::int(2),
                    Value::text("Sandra Bullock"),
                    Value::int(1964),
                    Value::text("female"),
                ],
                vec![
                    Value::int(3),
                    Value::text("Brad Pitt"),
                    Value::int(1963),
                    Value::text("male"),
                ],
            ],
        )
        .unwrap();
        db.insert_all(
            "movies",
            vec![
                vec![Value::int(10), Value::text("Forrest Gump"), Value::int(1994)],
                vec![Value::int(11), Value::text("Gravity"), Value::int(2013)],
                vec![Value::int(12), Value::text("Fight Club"), Value::int(1999)],
            ],
        )
        .unwrap();
        db.insert_all(
            "starring",
            vec![
                vec![Value::int(1), Value::int(10)],
                vec![Value::int(2), Value::int(11)],
                vec![Value::int(3), Value::int(12)],
            ],
        )
        .unwrap();
        db.rebuild_index();
        db
    }

    fn col(db: &Database, t: &str, c: &str) -> ColumnId {
        db.schema().column_id(t, c).unwrap()
    }

    #[test]
    fn simple_projection() {
        let db = movie_db();
        let spec = SelectSpec {
            select: vec![SelectItem::column(col(&db, "actor", "name"))],
            join: JoinTree::single(db.schema().table_id("actor").unwrap()),
            ..Default::default()
        };
        let rs = execute(&db, &spec).unwrap();
        assert_eq!(rs.len(), 3);
        assert_eq!(rs.columns, vec!["actor.name".to_string()]);
        assert_eq!(rs.types, vec![DataType::Text]);
    }

    #[test]
    fn where_filter_and_or() {
        let db = movie_db();
        let year = col(&db, "movies", "year");
        let mut spec = SelectSpec {
            select: vec![SelectItem::column(col(&db, "movies", "name"))],
            join: JoinTree::single(db.schema().table_id("movies").unwrap()),
            predicates: vec![
                Predicate::new(year, CmpOp::Lt, Value::int(1995)),
                Predicate::new(year, CmpOp::Gt, Value::int(2000)),
            ],
            predicate_op: LogicalOp::Or,
            ..Default::default()
        };
        let rs = execute(&db, &spec).unwrap();
        assert_eq!(rs.len(), 2); // Forrest Gump and Gravity
        spec.predicate_op = LogicalOp::And;
        let rs = execute(&db, &spec).unwrap();
        assert_eq!(rs.len(), 0);
    }

    #[test]
    fn three_way_join() {
        let db = movie_db();
        let schema = db.schema();
        let graph = JoinGraph::new(schema);
        let join = graph
            .steiner_tree(&[schema.table_id("actor").unwrap(), schema.table_id("movies").unwrap()])
            .unwrap();
        let spec = SelectSpec {
            select: vec![
                SelectItem::column(col(&db, "movies", "name")),
                SelectItem::column(col(&db, "actor", "name")),
            ],
            join,
            predicates: vec![Predicate::new(
                col(&db, "actor", "name"),
                CmpOp::Eq,
                Value::text("Tom Hanks"),
            )],
            ..Default::default()
        };
        let rs = execute(&db, &spec).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0].0[0], Value::text("Forrest Gump"));
    }

    #[test]
    fn group_by_with_count_and_having() {
        let db = movie_db();
        let schema = db.schema();
        let graph = JoinGraph::new(schema);
        let join = graph
            .steiner_tree(&[
                schema.table_id("actor").unwrap(),
                schema.table_id("starring").unwrap(),
            ])
            .unwrap();
        let gender = col(&db, "actor", "gender");
        let spec = SelectSpec {
            select: vec![SelectItem::column(gender), SelectItem::count_star()],
            join,
            group_by: vec![gender],
            having: vec![Predicate::having(AggFunc::Count, None, CmpOp::Ge, Value::int(2))],
            ..Default::default()
        };
        let rs = execute(&db, &spec).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0].0[0], Value::text("male"));
        assert_eq!(rs.rows[0].0[1], Value::int(2));
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let db = movie_db();
        let spec = SelectSpec {
            select: vec![SelectItem::count_star()],
            join: JoinTree::single(db.schema().table_id("movies").unwrap()),
            ..Default::default()
        };
        let rs = execute(&db, &spec).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0].0[0], Value::int(3));
    }

    #[test]
    fn order_by_and_limit() {
        let db = movie_db();
        let year = col(&db, "movies", "year");
        let spec = SelectSpec {
            select: vec![SelectItem::column(col(&db, "movies", "name"))],
            join: JoinTree::single(db.schema().table_id("movies").unwrap()),
            order_by: Some(OrderSpec { key: OrderKey::Column(year), desc: true }),
            limit: Some(1),
            ..Default::default()
        };
        let rs = execute(&db, &spec).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0].0[0], Value::text("Gravity"));
    }

    #[test]
    fn order_by_aggregate() {
        let db = movie_db();
        let schema = db.schema();
        let graph = JoinGraph::new(schema);
        let join = graph
            .steiner_tree(&[
                schema.table_id("actor").unwrap(),
                schema.table_id("starring").unwrap(),
            ])
            .unwrap();
        let gender = col(&db, "actor", "gender");
        let spec = SelectSpec {
            select: vec![SelectItem::column(gender), SelectItem::count_star()],
            join,
            group_by: vec![gender],
            order_by: Some(OrderSpec {
                key: OrderKey::Aggregate(AggFunc::Count, None),
                desc: true,
            }),
            ..Default::default()
        };
        let rs = execute(&db, &spec).unwrap();
        assert_eq!(rs.rows[0].0[0], Value::text("male"));
        assert_eq!(rs.rows[1].0[0], Value::text("female"));
    }

    #[test]
    fn distinct_removes_duplicates() {
        let db = movie_db();
        let gender = col(&db, "actor", "gender");
        let spec = SelectSpec {
            select: vec![SelectItem::column(gender)],
            distinct: true,
            join: JoinTree::single(db.schema().table_id("actor").unwrap()),
            ..Default::default()
        };
        let rs = execute(&db, &spec).unwrap();
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn aggregates_min_max_sum_avg() {
        let db = movie_db();
        let year = col(&db, "movies", "year");
        let spec = SelectSpec {
            select: vec![
                SelectItem::aggregate(AggFunc::Min, year),
                SelectItem::aggregate(AggFunc::Max, year),
                SelectItem::aggregate(AggFunc::Sum, year),
                SelectItem::aggregate(AggFunc::Avg, year),
                SelectItem::aggregate(AggFunc::Count, year),
            ],
            join: JoinTree::single(db.schema().table_id("movies").unwrap()),
            ..Default::default()
        };
        let rs = execute(&db, &spec).unwrap();
        assert_eq!(rs.rows[0].0[0], Value::int(1994));
        assert_eq!(rs.rows[0].0[1], Value::int(2013));
        assert_eq!(rs.rows[0].0[2], Value::int(1994 + 2013 + 1999));
        assert_eq!(rs.rows[0].0[4], Value::int(3));
        let avg = rs.rows[0].0[3].as_number().unwrap();
        assert!((avg - 2002.0).abs() < 1.0);
    }

    #[test]
    fn between_and_like_predicates() {
        let db = movie_db();
        let year = col(&db, "movies", "year");
        let name = col(&db, "movies", "name");
        let spec = SelectSpec {
            select: vec![SelectItem::column(name)],
            join: JoinTree::single(db.schema().table_id("movies").unwrap()),
            predicates: vec![Predicate::between(year, Value::int(1990), Value::int(2000))],
            ..Default::default()
        };
        assert_eq!(execute(&db, &spec).unwrap().len(), 2);

        let spec = SelectSpec {
            select: vec![SelectItem::column(name)],
            join: JoinTree::single(db.schema().table_id("movies").unwrap()),
            predicates: vec![Predicate::new(name, CmpOp::Like, Value::text("%club%"))],
            ..Default::default()
        };
        let rs = execute(&db, &spec).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0].0[0], Value::text("Fight Club"));
    }

    #[test]
    fn invalid_queries_rejected() {
        let db = movie_db();
        // Empty SELECT.
        let spec = SelectSpec {
            join: JoinTree::single(db.schema().table_id("movies").unwrap()),
            ..Default::default()
        };
        assert!(execute(&db, &spec).is_err());
        // Column not covered by FROM.
        let spec = SelectSpec {
            select: vec![SelectItem::column(col(&db, "actor", "name"))],
            join: JoinTree::single(db.schema().table_id("movies").unwrap()),
            ..Default::default()
        };
        assert!(matches!(execute(&db, &spec), Err(DbError::InvalidQuery(_))));
    }

    #[test]
    fn result_table_rendering() {
        let db = movie_db();
        let spec = SelectSpec {
            select: vec![SelectItem::column(col(&db, "movies", "name"))],
            join: JoinTree::single(db.schema().table_id("movies").unwrap()),
            ..Default::default()
        };
        let rs = execute(&db, &spec).unwrap();
        let table = rs.to_table_string(2);
        assert!(table.contains("movies.name"));
        assert!(table.contains("more rows"));
    }

    /// A larger fixture for streaming/parallel tests: `left` (many rows) joins
    /// `right` with a fan-out per key, so the joined relation is much larger
    /// than either base table.
    fn fanout_db(left_rows: usize, keys: usize, fanout: usize) -> Database {
        let mut s = Schema::new("fanout");
        s.add_table(TableDef::new(
            "right",
            vec![ColumnDef::number("k"), ColumnDef::number("v")],
            Some(0),
        ));
        s.add_table(TableDef::new(
            "left",
            vec![ColumnDef::number("id"), ColumnDef::number("k")],
            Some(0),
        ));
        s.add_foreign_key("left", "k", "right", "k").unwrap();
        let mut db = Database::new(s).unwrap();
        db.insert_all(
            "right",
            (0..keys * fanout).map(|i| vec![Value::int((i % keys) as i64), Value::int(i as i64)]),
        )
        .unwrap();
        db.insert_all(
            "left",
            (0..left_rows).map(|i| vec![Value::int(i as i64), Value::int((i % keys) as i64)]),
        )
        .unwrap();
        db.rebuild_index();
        db
    }

    fn fanout_join_spec(db: &Database) -> SelectSpec {
        let schema = db.schema();
        let graph = JoinGraph::new(schema);
        let join = graph
            .steiner_tree(&[schema.table_id("left").unwrap(), schema.table_id("right").unwrap()])
            .unwrap();
        SelectSpec {
            select: vec![
                SelectItem::column(col(db, "left", "id")),
                SelectItem::column(col(db, "right", "v")),
            ],
            join,
            ..Default::default()
        }
    }

    #[test]
    fn limit_probe_short_circuits_the_join() {
        let db = fanout_db(500, 10, 20);
        let mut probe = fanout_join_spec(&db);
        probe.limit = Some(1);

        let streaming = execute_with(&db, &probe, &ExecOptions::default()).unwrap();
        let materialized = execute_with(
            &db,
            &probe,
            &ExecOptions { limit_pushdown: false, ..ExecOptions::default() },
        )
        .unwrap();

        assert_eq!(streaming.result, materialized.result, "strategies must agree");
        assert!(streaming.metrics.streamed);
        assert!(!materialized.metrics.streamed);
        assert!(streaming.metrics.exact && materialized.metrics.exact);
        assert!(
            streaming.metrics.rows_scanned * 10 < materialized.metrics.rows_scanned,
            "LIMIT 1 must scan <10% of the materializing executor's rows: {} vs {}",
            streaming.metrics.rows_scanned,
            materialized.metrics.rows_scanned
        );
        assert!(streaming.metrics.rows_short_circuited > 0);
    }

    #[test]
    fn partition_counts_produce_identical_results() {
        let db = fanout_db(600, 7, 5);
        let mut spec = fanout_join_spec(&db);
        spec.predicates = vec![Predicate::new(col(&db, "right", "v"), CmpOp::Ge, Value::int(3))];

        let baseline = execute_with(
            &db,
            &spec,
            &ExecOptions {
                limit_pushdown: false,
                join_partitions: 1,
                parallel_join_threshold: 1,
                ..ExecOptions::default()
            },
        )
        .unwrap();
        for partitions in [2usize, 4] {
            let parallel = execute_with(
                &db,
                &spec,
                &ExecOptions {
                    limit_pushdown: false,
                    join_partitions: partitions,
                    parallel_join_threshold: 1,
                    ..ExecOptions::default()
                },
            )
            .unwrap();
            assert_eq!(
                baseline.result, parallel.result,
                "{partitions}-partition join diverged from the sequential join"
            );
        }
    }

    #[test]
    fn row_budget_truncates_and_reports_inexact() {
        let db = movie_db();
        let spec = SelectSpec {
            select: vec![SelectItem::column(col(&db, "movies", "name"))],
            join: JoinTree::single(db.schema().table_id("movies").unwrap()),
            ..Default::default()
        };
        let out = execute_with(
            &db,
            &spec,
            &ExecOptions { row_budget: Some(2), ..ExecOptions::default() },
        )
        .unwrap();
        assert_eq!(out.result.len(), 2);
        assert!(!out.metrics.exact, "budget cut a 3-row result to 2");

        let out = execute_with(
            &db,
            &spec,
            &ExecOptions { row_budget: Some(10), ..ExecOptions::default() },
        )
        .unwrap();
        assert_eq!(out.result.len(), 3);
        assert!(out.metrics.exact, "budget larger than the result is exact");
    }

    #[test]
    fn budget_truncation_matches_on_sorted_queries() {
        // With an ORDER BY, the budget must truncate the *sorted* output.
        let db = movie_db();
        let year = col(&db, "movies", "year");
        let spec = SelectSpec {
            select: vec![SelectItem::column(col(&db, "movies", "name"))],
            join: JoinTree::single(db.schema().table_id("movies").unwrap()),
            order_by: Some(OrderSpec { key: OrderKey::Column(year), desc: true }),
            ..Default::default()
        };
        let out = execute_with(
            &db,
            &spec,
            &ExecOptions { row_budget: Some(1), ..ExecOptions::default() },
        )
        .unwrap();
        assert_eq!(out.result.rows[0].0[0], Value::text("Gravity"));
        assert!(!out.metrics.exact);
    }

    #[test]
    fn presorted_order_by_streams_and_matches_materialized() {
        // `right` is the probe-side (first) table of the join plan and its
        // `v` column is stored ascending, so ORDER BY right.v ASC LIMIT k
        // can stream; ORDER BY ... DESC cannot and falls back to
        // materializing.
        let db = fanout_db(400, 8, 3);
        let mut spec = fanout_join_spec(&db);
        spec.order_by =
            Some(OrderSpec { key: OrderKey::Column(col(&db, "right", "v")), desc: false });
        spec.limit = Some(5);

        let streaming = execute_with(&db, &spec, &ExecOptions::default()).unwrap();
        let materialized = execute_with(
            &db,
            &spec,
            &ExecOptions { limit_pushdown: false, ..ExecOptions::default() },
        )
        .unwrap();
        assert!(streaming.metrics.streamed, "ascending presorted key must stream");
        assert_eq!(streaming.result, materialized.result);
        assert!(streaming.metrics.rows_scanned < materialized.metrics.rows_scanned);

        spec.order_by =
            Some(OrderSpec { key: OrderKey::Column(col(&db, "right", "v")), desc: true });
        let descending = execute_with(&db, &spec, &ExecOptions::default()).unwrap();
        assert!(!descending.metrics.streamed, "descending key is not presorted");
    }

    #[test]
    fn streaming_distinct_matches_materialized() {
        let db = fanout_db(300, 5, 4);
        let mut spec = fanout_join_spec(&db);
        spec.select = vec![SelectItem::column(col(&db, "left", "k"))];
        spec.distinct = true;
        spec.limit = Some(3);

        let streaming = execute_with(&db, &spec, &ExecOptions::default()).unwrap();
        let materialized = execute_with(
            &db,
            &spec,
            &ExecOptions { limit_pushdown: false, ..ExecOptions::default() },
        )
        .unwrap();
        assert!(streaming.metrics.streamed);
        assert_eq!(streaming.result, materialized.result);
    }

    #[test]
    fn zero_limit_produces_no_rows() {
        let db = movie_db();
        let spec = SelectSpec {
            select: vec![SelectItem::column(col(&db, "movies", "name"))],
            join: JoinTree::single(db.schema().table_id("movies").unwrap()),
            limit: Some(0),
            ..Default::default()
        };
        let out = execute_with(&db, &spec, &ExecOptions::default()).unwrap();
        assert!(out.result.is_empty());
        assert!(out.metrics.exact);
    }
}
