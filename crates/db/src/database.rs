//! Row storage and the loaded [`Database`].
//!
//! A `Database` is `Send + Sync` and designed to be shared cheaply behind an
//! `Arc` by the parallel synthesis session: all query entry points take
//! `&self`, and the embedded probe/result memo cache ([`ProbeCache`]) uses
//! interior mutability (sharded locks + atomic counters) so concurrent
//! readers never need an exclusive borrow.

use crate::cache::{CacheStats, ProbeCache};
use crate::error::{DbError, DbResult};
use crate::executor::ResultSet;
use crate::index::InvertedIndex;
use crate::query::SelectSpec;
use crate::schema::{ColumnId, Schema, TableId};
use crate::types::{DataType, Value};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A single row of values.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Row(pub Vec<Value>);

impl Row {
    /// Construct a row from values.
    pub fn new(values: Vec<Value>) -> Self {
        Row(values)
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the row has no cells.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Access a cell.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.0.get(idx)
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row(values)
    }
}

/// The stored rows of one table.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TableData {
    /// Rows in insertion order.
    pub rows: Vec<Row>,
}

impl TableData {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// A schema together with its data, the autocomplete inverted index and the
/// verification-probe memo cache.
#[derive(Debug)]
pub struct Database {
    schema: Schema,
    data: Vec<TableData>,
    index: InvertedIndex,
    index_dirty: bool,
    probe_cache: ProbeCache,
}

impl Clone for Database {
    /// Clones carry the schema, data and index; the probe cache starts empty
    /// (memoized results stay valid only for the instance that produced them).
    fn clone(&self) -> Self {
        Database {
            schema: self.schema.clone(),
            data: self.data.clone(),
            index: self.index.clone(),
            index_dirty: self.index_dirty,
            probe_cache: ProbeCache::default(),
        }
    }
}

impl Database {
    /// Create an empty database over a schema.
    pub fn new(schema: Schema) -> DbResult<Self> {
        schema.validate()?;
        let data = vec![TableData::default(); schema.table_count()];
        Ok(Database {
            schema,
            data,
            index: InvertedIndex::default(),
            index_dirty: false,
            probe_cache: ProbeCache::default(),
        })
    }

    /// Wrap a loaded database for cheap sharing across synthesis workers.
    pub fn into_shared(self) -> Arc<Database> {
        Arc::new(self)
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Rows of a table.
    pub fn table_data(&self, table: TableId) -> &TableData {
        &self.data[table.0]
    }

    /// Total number of rows in the database.
    pub fn total_rows(&self) -> usize {
        self.data.iter().map(|d| d.len()).sum()
    }

    /// Insert a row into a table identified by name, with arity and type checks.
    pub fn insert(&mut self, table: &str, values: Vec<Value>) -> DbResult<()> {
        let tid = self.schema.table_id(table)?;
        self.insert_by_id(tid, values)
    }

    /// Insert a row into a table identified by id, with arity and type checks.
    pub fn insert_by_id(&mut self, table: TableId, values: Vec<Value>) -> DbResult<()> {
        let def = self.schema.table(table);
        if values.len() != def.columns.len() {
            return Err(DbError::ArityMismatch {
                table: def.name.clone(),
                expected: def.columns.len(),
                got: values.len(),
            });
        }
        for (col, v) in def.columns.iter().zip(&values) {
            if let Some(dt) = v.data_type() {
                if dt != col.dtype {
                    return Err(DbError::TypeMismatch {
                        table: def.name.clone(),
                        column: col.name.clone(),
                        expected: col.dtype.to_string(),
                        got: dt.to_string(),
                    });
                }
            }
        }
        self.data[table.0].rows.push(Row(values));
        self.index_dirty = true;
        self.probe_cache.clear(); // memoized probe results are now stale
        Ok(())
    }

    /// Bulk-insert rows into a table.
    pub fn insert_all(
        &mut self,
        table: &str,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> DbResult<()> {
        let tid = self.schema.table_id(table)?;
        for r in rows {
            self.insert_by_id(tid, r)?;
        }
        Ok(())
    }

    /// Value of a cell.
    pub fn cell(&self, table: TableId, row: usize, column: usize) -> &Value {
        &self.data[table.0].rows[row].0[column]
    }

    /// Iterate the values of one column.
    pub fn column_values(&self, col: ColumnId) -> impl Iterator<Item = &Value> {
        self.data[col.table.0].rows.iter().map(move |r| &r.0[col.column])
    }

    /// Observed minimum and maximum of a numeric column, ignoring NULLs.
    /// Used by the verifier's `AVG` range check (paper §3.4).
    pub fn numeric_range(&self, col: ColumnId) -> Option<(f64, f64)> {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut seen = false;
        for v in self.column_values(col) {
            if let Value::Number(n) = v {
                min = min.min(*n);
                max = max.max(*n);
                seen = true;
            }
        }
        seen.then_some((min, max))
    }

    /// Rebuild the inverted column index over all text columns.
    pub fn rebuild_index(&mut self) {
        self.index = InvertedIndex::build(&self.schema, &self.data);
        self.index_dirty = false;
    }

    /// The autocomplete inverted index. Panics in debug builds if the index is
    /// stale; call [`Database::rebuild_index`] after loading data.
    pub fn index(&self) -> &InvertedIndex {
        debug_assert!(!self.index_dirty, "inverted index is stale; call rebuild_index()");
        &self.index
    }

    /// Whether the index needs rebuilding.
    pub fn index_is_dirty(&self) -> bool {
        self.index_dirty
    }

    /// Data type of a column.
    pub fn column_type(&self, col: ColumnId) -> DataType {
        self.schema.column(col).dtype
    }

    /// Execute a query through the probe/result memo cache: repeated
    /// executions of a structurally identical spec (the verifier's
    /// `SELECT … LIMIT 1` probes, most prominently) are answered from the
    /// cache. The result is shared, not copied.
    pub fn execute_cached(&self, spec: &SelectSpec) -> DbResult<Arc<ResultSet>> {
        if let Some(hit) = self.probe_cache.get(spec) {
            return Ok(hit);
        }
        let result = crate::executor::execute(self, spec)?;
        Ok(self.probe_cache.insert(spec, result))
    }

    /// Like [`Database::execute_cached`], additionally attributing the
    /// hit/miss to a caller-owned per-run counter set (the database's global
    /// counters are shared by every run touching this instance).
    pub fn execute_cached_with(
        &self,
        spec: &SelectSpec,
        counters: &crate::cache::RunCacheCounters,
    ) -> DbResult<Arc<ResultSet>> {
        if let Some(hit) = self.probe_cache.get(spec) {
            counters.record(true);
            return Ok(hit);
        }
        counters.record(false);
        let result = crate::executor::execute(self, spec)?;
        Ok(self.probe_cache.insert(spec, result))
    }

    /// Cumulative probe-cache counters for this database instance.
    pub fn cache_stats(&self) -> CacheStats {
        self.probe_cache.stats()
    }

    /// Drop all memoized probe results.
    pub fn clear_probe_cache(&self) {
        self.probe_cache.clear();
    }

    /// Replace the probe cache's byte budget (see
    /// [`crate::cache::ProbeCache::set_max_bytes`]). Shared-reference
    /// friendly, so a capacity can be tuned on an `Arc`-shared database.
    pub fn set_probe_cache_capacity(&self, max_bytes: u64) {
        self.probe_cache.set_max_bytes(max_bytes);
    }
}

// The parallel synthesis session shares one `Database` across its worker
// pool; keep the compiler holding us to that contract.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Database>()
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, TableDef};

    fn db() -> Database {
        let mut s = Schema::new("test");
        s.add_table(TableDef::new(
            "actor",
            vec![ColumnDef::number("aid"), ColumnDef::text("name"), ColumnDef::number("birth_yr")],
            Some(0),
        ));
        Database::new(s).unwrap()
    }

    #[test]
    fn insert_and_read_back() {
        let mut d = db();
        d.insert("actor", vec![Value::int(1), Value::text("Tom Hanks"), Value::int(1956)]).unwrap();
        d.insert("actor", vec![Value::int(2), Value::text("Sandra Bullock"), Value::int(1964)])
            .unwrap();
        assert_eq!(d.total_rows(), 2);
        let name_col = d.schema().column_id("actor", "name").unwrap();
        let names: Vec<_> = d.column_values(name_col).cloned().collect();
        assert_eq!(names[0], Value::text("Tom Hanks"));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut d = db();
        let err = d.insert("actor", vec![Value::int(1)]);
        assert!(matches!(err, Err(DbError::ArityMismatch { .. })));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut d = db();
        let err = d.insert("actor", vec![Value::text("x"), Value::text("n"), Value::int(1)]);
        assert!(matches!(err, Err(DbError::TypeMismatch { .. })));
    }

    #[test]
    fn nulls_are_accepted_for_any_type() {
        let mut d = db();
        d.insert("actor", vec![Value::int(1), Value::Null, Value::Null]).unwrap();
        assert_eq!(d.total_rows(), 1);
    }

    #[test]
    fn numeric_range_ignores_nulls() {
        let mut d = db();
        d.insert("actor", vec![Value::int(1), Value::text("a"), Value::int(1950)]).unwrap();
        d.insert("actor", vec![Value::int(2), Value::text("b"), Value::Null]).unwrap();
        d.insert("actor", vec![Value::int(3), Value::text("c"), Value::int(1990)]).unwrap();
        let col = d.schema().column_id("actor", "birth_yr").unwrap();
        assert_eq!(d.numeric_range(col), Some((1950.0, 1990.0)));
        let name = d.schema().column_id("actor", "name").unwrap();
        assert_eq!(d.numeric_range(name), None);
    }

    #[test]
    fn index_dirty_tracking() {
        let mut d = db();
        assert!(!d.index_is_dirty());
        d.insert("actor", vec![Value::int(1), Value::text("Tom"), Value::int(1956)]).unwrap();
        assert!(d.index_is_dirty());
        d.rebuild_index();
        assert!(!d.index_is_dirty());
    }
}
