//! Row storage and the loaded [`Database`].
//!
//! A `Database` is `Send + Sync` and designed to be shared cheaply behind an
//! `Arc` by the parallel synthesis session: all query entry points take
//! `&self`, and the embedded probe/result memo cache ([`ProbeCache`]) uses
//! interior mutability (sharded locks + atomic counters) so concurrent
//! readers never need an exclusive borrow.

use crate::cache::{CacheStats, CachedProbe, InflightJoin, ProbeCache, RunCacheCounters};
use crate::error::{DbError, DbResult};
use crate::executor::{ExecOptions, ResultSet};
use crate::index::InvertedIndex;
use crate::query::SelectSpec;
use crate::schema::{ColumnId, Schema, TableId};
use crate::table_index::{ColumnIndex, IndexStats, TableIndex};
use crate::types::{DataType, Value};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// A single row of values.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Row(pub Vec<Value>);

impl Row {
    /// Construct a row from values.
    pub fn new(values: Vec<Value>) -> Self {
        Row(values)
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the row has no cells.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Access a cell.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.0.get(idx)
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row(values)
    }
}

/// The stored rows of one table.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TableData {
    /// Rows in insertion order.
    pub rows: Vec<Row>,
}

impl TableData {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// A schema together with its data, the autocomplete inverted index and the
/// verification-probe memo cache.
#[derive(Debug)]
pub struct Database {
    schema: Schema,
    data: Vec<TableData>,
    index: InvertedIndex,
    index_dirty: bool,
    probe_cache: ProbeCache,
    /// Per-table, per-column `(ascending, descending)` non-strict sortedness
    /// of the stored rows (under `Value::total_cmp`), computed by
    /// [`Database::rebuild_index`] and maintained incrementally by the write
    /// path. The streaming executor uses it to skip sorts whose order the
    /// storage already satisfies.
    sorted_flags: Vec<Vec<(bool, bool)>>,
    /// Whether `sorted_flags` reflects the stored data (`rebuild_index` ran
    /// at least once; writes since then were folded in incrementally).
    sorted_valid: bool,
    /// Per-table ordered secondary indexes (`crate::table_index`), built by
    /// [`Database::rebuild_index`] and maintained incrementally by the write
    /// path. Empty until the first rebuild — queries then run as scans.
    table_indexes: Vec<TableIndex>,
    /// Whether the executor may use the secondary indexes (INLJ, range and
    /// ordered scans, selectivity planning). On by default; disabled for
    /// A/B comparisons against the pure scan pipeline.
    index_access: AtomicBool,
    /// Whether concurrent identical probe misses are collapsed through the
    /// single-flight in-flight table (one execution fans out to all waiters).
    /// On by default; disabled for A/B comparisons.
    single_flight: AtomicBool,
    /// Hash partitions (scoped threads) for large materialized joins.
    join_partitions: AtomicUsize,
    /// Probe-side row count at which the partitioned parallel join kicks in.
    parallel_join_threshold: AtomicUsize,
}

impl Clone for Database {
    /// Clones carry the schema, data, index and executor tuning; the probe
    /// cache starts empty (memoized results stay valid only for the instance
    /// that produced them).
    fn clone(&self) -> Self {
        Database {
            schema: self.schema.clone(),
            data: self.data.clone(),
            index: self.index.clone(),
            index_dirty: self.index_dirty,
            probe_cache: ProbeCache::default(),
            sorted_flags: self.sorted_flags.clone(),
            sorted_valid: self.sorted_valid,
            table_indexes: self.table_indexes.clone(),
            index_access: AtomicBool::new(self.index_access.load(Ordering::Relaxed)),
            single_flight: AtomicBool::new(self.single_flight.load(Ordering::Relaxed)),
            join_partitions: AtomicUsize::new(self.join_partitions.load(Ordering::Relaxed)),
            parallel_join_threshold: AtomicUsize::new(
                self.parallel_join_threshold.load(Ordering::Relaxed),
            ),
        }
    }
}

impl Database {
    /// Create an empty database over a schema.
    pub fn new(schema: Schema) -> DbResult<Self> {
        schema.validate()?;
        let data = vec![TableData::default(); schema.table_count()];
        Ok(Database {
            schema,
            data,
            index: InvertedIndex::default(),
            index_dirty: false,
            probe_cache: ProbeCache::default(),
            sorted_flags: Vec::new(),
            sorted_valid: false,
            table_indexes: Vec::new(),
            index_access: AtomicBool::new(true),
            single_flight: AtomicBool::new(true),
            // Defaults to 1: verifier probes already run nested inside the
            // synthesis worker pool, and per-probe scoped threads on top of
            // ~ncpu workers would oversubscribe the machine. Standalone
            // analytical consumers opt in via `set_join_partitions`.
            join_partitions: AtomicUsize::new(1),
            parallel_join_threshold: AtomicUsize::new(crate::executor::PARALLEL_JOIN_THRESHOLD),
        })
    }

    /// Wrap a loaded database for cheap sharing across synthesis workers.
    pub fn into_shared(self) -> Arc<Database> {
        Arc::new(self)
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Rows of a table.
    pub fn table_data(&self, table: TableId) -> &TableData {
        &self.data[table.0]
    }

    /// Total number of rows in the database.
    pub fn total_rows(&self) -> usize {
        self.data.iter().map(|d| d.len()).sum()
    }

    /// Insert a row into a table identified by name, with arity and type checks.
    pub fn insert(&mut self, table: &str, values: Vec<Value>) -> DbResult<()> {
        let tid = self.schema.table_id(table)?;
        self.insert_by_id(tid, values)
    }

    /// Insert a row into a table identified by id, with arity and type checks.
    pub fn insert_by_id(&mut self, table: TableId, values: Vec<Value>) -> DbResult<()> {
        let def = self.schema.table(table);
        if values.len() != def.columns.len() {
            return Err(DbError::ArityMismatch {
                table: def.name.clone(),
                expected: def.columns.len(),
                got: values.len(),
            });
        }
        for (col, v) in def.columns.iter().zip(&values) {
            if let Some(dt) = v.data_type() {
                if dt != col.dtype {
                    return Err(DbError::TypeMismatch {
                        table: def.name.clone(),
                        column: col.name.clone(),
                        expected: col.dtype.to_string(),
                        got: dt.to_string(),
                    });
                }
            }
        }
        self.data[table.0].rows.push(Row(values));
        let rows = &self.data[table.0].rows;
        let row_idx = rows.len() - 1;
        // Secondary indexes and sortedness flags are maintained in place, so
        // index-backed access stays valid across appends without a rebuild.
        if let Some(tidx) = self.table_indexes.get_mut(table.0) {
            tidx.insert_appended(rows, row_idx);
        }
        if self.sorted_valid && row_idx > 0 {
            if let Some(flags) = self.sorted_flags.get_mut(table.0) {
                let (prev, new) = (&rows[row_idx - 1], &rows[row_idx]);
                for (ci, flag) in flags.iter_mut().enumerate() {
                    match prev.0[ci].total_cmp(&new.0[ci]) {
                        std::cmp::Ordering::Less => flag.1 = false,
                        std::cmp::Ordering::Greater => flag.0 = false,
                        std::cmp::Ordering::Equal => {}
                    }
                }
            }
        }
        self.index_dirty = true; // the autocomplete inverted index is now stale
        self.probe_cache.clear(); // memoized probe results are now stale
        Ok(())
    }

    /// Update one cell in place, with type checks. The column's secondary
    /// index and sortedness flags are maintained incrementally and the probe
    /// cache is invalidated, so neither the index nor the memo path can serve
    /// the overwritten value afterwards.
    pub fn update_cell(
        &mut self,
        table: &str,
        row: usize,
        column: &str,
        value: Value,
    ) -> DbResult<()> {
        let col = self.schema.column_id(table, column)?;
        let def = self.schema.table(col.table);
        let cdef = &def.columns[col.column];
        if let Some(dt) = value.data_type() {
            if dt != cdef.dtype {
                return Err(DbError::TypeMismatch {
                    table: def.name.clone(),
                    column: cdef.name.clone(),
                    expected: cdef.dtype.to_string(),
                    got: dt.to_string(),
                });
            }
        }
        let n_rows = self.data[col.table.0].rows.len();
        if row >= n_rows {
            return Err(DbError::InvalidQuery(format!(
                "row {row} out of bounds for table {} ({n_rows} rows)",
                def.name
            )));
        }
        let old = std::mem::replace(&mut self.data[col.table.0].rows[row].0[col.column], value);
        let rows = &self.data[col.table.0].rows;
        if let Some(tidx) = self.table_indexes.get_mut(col.table.0) {
            tidx.update_cell(rows, col.column, row, &old);
        }
        if self.sorted_valid {
            // An overwrite can break *or restore* sortedness; recompute the
            // one affected column from scratch.
            if let Some(flags) = self.sorted_flags.get_mut(col.table.0) {
                flags[col.column] = column_sortedness(rows, col.column);
            }
        }
        self.index_dirty = true; // the autocomplete inverted index is now stale
        self.probe_cache.clear(); // memoized probe results are now stale
        Ok(())
    }

    /// Bulk-insert rows into a table.
    pub fn insert_all(
        &mut self,
        table: &str,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> DbResult<()> {
        let tid = self.schema.table_id(table)?;
        for r in rows {
            self.insert_by_id(tid, r)?;
        }
        Ok(())
    }

    /// Value of a cell.
    pub fn cell(&self, table: TableId, row: usize, column: usize) -> &Value {
        &self.data[table.0].rows[row].0[column]
    }

    /// Iterate the values of one column.
    pub fn column_values(&self, col: ColumnId) -> impl Iterator<Item = &Value> {
        self.data[col.table.0].rows.iter().map(move |r| &r.0[col.column])
    }

    /// Observed minimum and maximum of a numeric column, ignoring NULLs.
    /// Used by the verifier's `AVG` range check (paper §3.4).
    pub fn numeric_range(&self, col: ColumnId) -> Option<(f64, f64)> {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut seen = false;
        for v in self.column_values(col) {
            if let Value::Number(n) = v {
                min = min.min(*n);
                max = max.max(*n);
                seen = true;
            }
        }
        seen.then_some((min, max))
    }

    /// Rebuild the inverted column index over all text columns, the
    /// per-column sortedness flags used by the streaming executor's
    /// order-aware limit pushdown, and the ordered secondary indexes
    /// ([`TableIndex`]) behind index-nested-loop joins, range scans and
    /// ordered index scans.
    pub fn rebuild_index(&mut self) {
        self.index = InvertedIndex::build(&self.schema, &self.data);
        self.sorted_flags = self
            .data
            .iter()
            .enumerate()
            .map(|(ti, table)| {
                (0..self.schema.table(TableId(ti)).columns.len())
                    .map(|ci| column_sortedness(&table.rows, ci))
                    .collect()
            })
            .collect();
        self.sorted_valid = true;
        self.table_indexes = self
            .data
            .iter()
            .enumerate()
            .map(|(ti, table)| {
                TableIndex::build(&table.rows, self.schema.table(TableId(ti)).columns.len())
            })
            .collect();
        self.index_dirty = false;
    }

    /// Whether the stored rows of `col`'s table are already (non-strictly)
    /// sorted by `col` in the requested direction, under the same total
    /// order the executor sorts with. Returns `false` until the first
    /// [`Database::rebuild_index`]; the write path then keeps the flags
    /// accurate incrementally.
    pub fn column_is_sorted(&self, col: ColumnId, desc: bool) -> bool {
        if !self.sorted_valid {
            return false;
        }
        self.sorted_flags
            .get(col.table.0)
            .and_then(|t| t.get(col.column))
            .map(|&(asc_ok, desc_ok)| if desc { desc_ok } else { asc_ok })
            .unwrap_or(false)
    }

    /// The autocomplete inverted index. Panics in debug builds if the index is
    /// stale; call [`Database::rebuild_index`] after loading data.
    pub fn index(&self) -> &InvertedIndex {
        debug_assert!(!self.index_dirty, "inverted index is stale; call rebuild_index()");
        &self.index
    }

    /// Whether the index needs rebuilding.
    pub fn index_is_dirty(&self) -> bool {
        self.index_dirty
    }

    /// The ordered secondary index of one column, or `None` until the first
    /// [`Database::rebuild_index`]. The write path maintains built indexes
    /// incrementally, so they never serve stale rows.
    pub fn column_index(&self, col: ColumnId) -> Option<&ColumnIndex> {
        self.table_indexes.get(col.table.0).map(|t| t.column(col.column))
    }

    /// Cardinality/min/max statistics of one indexed column, or `None` until
    /// the first [`Database::rebuild_index`].
    pub fn index_stats(&self, col: ColumnId) -> Option<IndexStats> {
        self.column_index(col).map(|idx| idx.stats(&self.data[col.table.0].rows, col.column))
    }

    /// Whether the executor may use the secondary indexes (the default).
    pub fn index_access(&self) -> bool {
        self.index_access.load(Ordering::Relaxed)
    }

    /// Enable or disable index-backed execution paths (INLJ, range and
    /// ordered index scans, selectivity-driven planning). The executor's
    /// determinism contract guarantees byte-identical results either way;
    /// this switch exists for A/B comparisons and benchmarks.
    /// Shared-reference friendly, so it can be toggled on an `Arc`-shared
    /// database.
    pub fn set_index_access(&self, enabled: bool) {
        self.index_access.store(enabled, Ordering::Relaxed);
    }

    /// Whether concurrent identical probe misses are collapsed into one
    /// execution through the single-flight table (the default).
    pub fn single_flight(&self) -> bool {
        self.single_flight.load(Ordering::Relaxed)
    }

    /// Enable or disable single-flight probe collapsing (see
    /// [`crate::cache::InflightTable`]). Results are byte-identical either
    /// way — a waiter is served exactly what it would have executed itself
    /// (the in-flight key includes the budget class) — so this switch exists
    /// for A/B comparisons and benchmarks. Shared-reference friendly, so it
    /// can be toggled on an `Arc`-shared database.
    pub fn set_single_flight(&self, enabled: bool) {
        self.single_flight.store(enabled, Ordering::Relaxed);
    }

    /// Data type of a column.
    pub fn column_type(&self, col: ColumnId) -> DataType {
        self.schema.column(col).dtype
    }

    /// The executor options this database runs [`crate::executor::execute`]
    /// with: streaming limit pushdown on, no row budget, and the configured
    /// join parallelism.
    pub fn exec_options(&self) -> ExecOptions {
        ExecOptions {
            join_partitions: self.join_partitions(),
            parallel_join_threshold: self.parallel_join_threshold.load(Ordering::Relaxed),
            index_access: self.index_access(),
            ..ExecOptions::default()
        }
    }

    /// Number of hash partitions (probe-side scoped threads) large
    /// materialized joins split across. Defaults to 1 — the synthesis engine
    /// already parallelizes across probes, so per-probe join parallelism is
    /// opt-in for standalone analytical consumers. Row order is identical
    /// for every value (see the executor's determinism contract).
    pub fn join_partitions(&self) -> usize {
        self.join_partitions.load(Ordering::Relaxed).max(1)
    }

    /// Replace the join partition count. Shared-reference friendly, so it
    /// can be tuned on an `Arc`-shared database.
    pub fn set_join_partitions(&self, partitions: usize) {
        self.join_partitions.store(partitions.max(1), Ordering::Relaxed);
    }

    /// Replace the probe-side row count at which joins go parallel.
    pub fn set_parallel_join_threshold(&self, rows: usize) {
        self.parallel_join_threshold.store(rows.max(1), Ordering::Relaxed);
    }

    /// Execute a query through the probe/result memo cache: repeated
    /// executions of a structurally identical spec (the verifier's
    /// `SELECT … LIMIT 1` probes, most prominently) are answered from the
    /// cache. The result is shared, not copied.
    pub fn execute_cached(&self, spec: &SelectSpec) -> DbResult<Arc<ResultSet>> {
        if let Some(hit) = self.probe_cache.get(spec) {
            return Ok(hit);
        }
        let out = crate::executor::execute_with(self, spec, &self.exec_options())?;
        Ok(self.probe_cache.insert(spec, out.result))
    }

    /// Like [`Database::execute_cached`], additionally attributing the
    /// hit/miss (and the executor's scan counters) to a caller-owned per-run
    /// counter set (the database's global counters are shared by every run
    /// touching this instance).
    pub fn execute_cached_with(
        &self,
        spec: &SelectSpec,
        counters: &RunCacheCounters,
    ) -> DbResult<Arc<ResultSet>> {
        self.execute_cached_budgeted(spec, None, counters).map(|probe| probe.rows)
    }

    /// Execute a query under a **row budget**, through the memo cache: the
    /// returned rows cover at least `min(budget, |result|)` rows of the
    /// spec's result — a fresh execution returns exactly that prefix, while
    /// a cache hit may carry more (an exact entry, or one truncated at a
    /// larger budget, is served as stored) — and [`CachedProbe::exact`]
    /// reports whether the rows are the complete result. With a budget the
    /// streaming executor stops scanning as soon as the budget is filled,
    /// which is what makes the verifier's sorted-TSQ limit checks cheap:
    /// probing with `budget = k + 1` decides "does the result exceed `k`
    /// rows?" without ever materializing the full result.
    ///
    /// Truncated results are memoized with their exactness bit; a truncated
    /// entry answers later probes with the same or smaller budget, and is
    /// upgraded in place when a larger budget forces a re-execution.
    ///
    /// ```
    /// use duoquest_db::{ColumnDef, Database, JoinTree, RunCacheCounters, Schema, SelectItem,
    ///     SelectSpec, TableDef, Value};
    ///
    /// let mut schema = Schema::new("demo");
    /// schema.add_table(TableDef::new("t", vec![ColumnDef::number("id")], Some(0)));
    /// let mut db = Database::new(schema).unwrap();
    /// db.insert_all("t", (0..10).map(|i| vec![Value::int(i)])).unwrap();
    /// db.rebuild_index();
    ///
    /// let spec = SelectSpec {
    ///     select: vec![SelectItem::column(db.schema().column_id("t", "id").unwrap())],
    ///     join: JoinTree::single(db.schema().table_id("t").unwrap()),
    ///     ..Default::default()
    /// };
    /// let counters = RunCacheCounters::default();
    /// // "Does the result exceed 2 rows?" — 3 rows suffice to answer.
    /// let probe = db.execute_cached_budgeted(&spec, Some(3), &counters).unwrap();
    /// assert_eq!(probe.rows.len(), 3);
    /// assert!(!probe.exact, "the 10-row result was truncated at the budget");
    /// // The truncated entry answers smaller budgets from the cache.
    /// let again = db.execute_cached_budgeted(&spec, Some(2), &counters).unwrap();
    /// assert!(!again.exact);
    /// assert_eq!(counters.snapshot(), (1, 1), "(hits, misses)");
    /// ```
    pub fn execute_cached_budgeted(
        &self,
        spec: &SelectSpec,
        budget: Option<usize>,
        counters: &RunCacheCounters,
    ) -> DbResult<CachedProbe> {
        if let Some(hit) = self.probe_cache.get_budgeted(spec, budget) {
            counters.record(true);
            return Ok(hit);
        }
        counters.record(false);
        if !self.single_flight() {
            return self.execute_probe(spec, budget, counters);
        }
        // Single-flight: collapse concurrent identical misses into one
        // execution. The in-flight key carries the budget class, so a waiter
        // is served a result executed under its own budget (the exactness
        // bit therefore always means what the waiter would have computed).
        let key = (ProbeCache::fingerprint(spec), budget);
        match self.probe_cache.inflight().join(key) {
            InflightJoin::Leader(guard) => {
                counters.single_flight_leaders.fetch_add(1, Ordering::Relaxed);
                // On error the guard drops unpublished, abandoning the slot:
                // a waiter (or the next arrival) re-elects and re-executes.
                let probe = self.execute_probe(spec, budget, counters)?;
                guard.publish(probe.clone());
                Ok(probe)
            }
            InflightJoin::Served { probe, wait_us } => {
                counters.single_flight_hits.fetch_add(1, Ordering::Relaxed);
                counters.single_flight_wait_us.fetch_add(wait_us, Ordering::Relaxed);
                Ok(probe)
            }
        }
    }

    /// Run one probe through the executor under a row budget and memoize the
    /// result — the miss path of [`Database::execute_cached_budgeted`].
    fn execute_probe(
        &self,
        spec: &SelectSpec,
        budget: Option<usize>,
        counters: &RunCacheCounters,
    ) -> DbResult<CachedProbe> {
        let mut opts = self.exec_options();
        opts.row_budget = budget;
        let out = crate::executor::execute_with(self, spec, &opts)?;
        counters.record_scan(&out.metrics);
        Ok(self.probe_cache.insert_budgeted(spec, out.result, out.metrics.exact))
    }

    /// Cumulative probe-cache counters for this database instance.
    pub fn cache_stats(&self) -> CacheStats {
        self.probe_cache.stats()
    }

    /// Drop all memoized probe results.
    pub fn clear_probe_cache(&self) {
        self.probe_cache.clear();
    }

    /// Replace the probe cache's byte budget (see
    /// [`crate::cache::ProbeCache::set_max_bytes`]). Shared-reference
    /// friendly, so a capacity can be tuned on an `Arc`-shared database.
    pub fn set_probe_cache_capacity(&self, max_bytes: u64) {
        self.probe_cache.set_max_bytes(max_bytes);
    }
}

/// `(ascending, descending)` non-strict sortedness of one stored column
/// under `Value::total_cmp` — the order the executor's batch sort uses.
fn column_sortedness(rows: &[Row], ci: usize) -> (bool, bool) {
    let mut asc = true;
    let mut desc = true;
    for pair in rows.windows(2) {
        match pair[0].0[ci].total_cmp(&pair[1].0[ci]) {
            std::cmp::Ordering::Less => desc = false,
            std::cmp::Ordering::Greater => asc = false,
            std::cmp::Ordering::Equal => {}
        }
        if !asc && !desc {
            break;
        }
    }
    (asc, desc)
}

// The parallel synthesis session shares one `Database` across its worker
// pool; keep the compiler holding us to that contract.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Database>()
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, TableDef};

    fn db() -> Database {
        let mut s = Schema::new("test");
        s.add_table(TableDef::new(
            "actor",
            vec![ColumnDef::number("aid"), ColumnDef::text("name"), ColumnDef::number("birth_yr")],
            Some(0),
        ));
        Database::new(s).unwrap()
    }

    #[test]
    fn insert_and_read_back() {
        let mut d = db();
        d.insert("actor", vec![Value::int(1), Value::text("Tom Hanks"), Value::int(1956)]).unwrap();
        d.insert("actor", vec![Value::int(2), Value::text("Sandra Bullock"), Value::int(1964)])
            .unwrap();
        assert_eq!(d.total_rows(), 2);
        let name_col = d.schema().column_id("actor", "name").unwrap();
        let names: Vec<_> = d.column_values(name_col).cloned().collect();
        assert_eq!(names[0], Value::text("Tom Hanks"));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut d = db();
        let err = d.insert("actor", vec![Value::int(1)]);
        assert!(matches!(err, Err(DbError::ArityMismatch { .. })));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut d = db();
        let err = d.insert("actor", vec![Value::text("x"), Value::text("n"), Value::int(1)]);
        assert!(matches!(err, Err(DbError::TypeMismatch { .. })));
    }

    #[test]
    fn nulls_are_accepted_for_any_type() {
        let mut d = db();
        d.insert("actor", vec![Value::int(1), Value::Null, Value::Null]).unwrap();
        assert_eq!(d.total_rows(), 1);
    }

    #[test]
    fn numeric_range_ignores_nulls() {
        let mut d = db();
        d.insert("actor", vec![Value::int(1), Value::text("a"), Value::int(1950)]).unwrap();
        d.insert("actor", vec![Value::int(2), Value::text("b"), Value::Null]).unwrap();
        d.insert("actor", vec![Value::int(3), Value::text("c"), Value::int(1990)]).unwrap();
        let col = d.schema().column_id("actor", "birth_yr").unwrap();
        assert_eq!(d.numeric_range(col), Some((1950.0, 1990.0)));
        let name = d.schema().column_id("actor", "name").unwrap();
        assert_eq!(d.numeric_range(name), None);
    }

    #[test]
    fn index_dirty_tracking() {
        let mut d = db();
        assert!(!d.index_is_dirty());
        d.insert("actor", vec![Value::int(1), Value::text("Tom"), Value::int(1956)]).unwrap();
        assert!(d.index_is_dirty());
        d.rebuild_index();
        assert!(!d.index_is_dirty());
    }

    /// Writes after the index build must keep the secondary indexes current
    /// AND invalidate the probe cache — a stale row served through either
    /// path would silently corrupt verification.
    #[test]
    fn writes_update_indexes_and_invalidate_probe_cache() {
        use crate::executor::{execute_with, ExecOptions};
        use crate::join_graph::JoinTree;
        use crate::query::{CmpOp, Predicate, SelectItem, SelectSpec};

        let mut d = db();
        d.insert("actor", vec![Value::int(1), Value::text("Tom Hanks"), Value::int(1956)]).unwrap();
        d.insert("actor", vec![Value::int(2), Value::text("Sandra Bullock"), Value::int(1964)])
            .unwrap();
        d.rebuild_index();

        let name = d.schema().column_id("actor", "name").unwrap();
        let actor = d.schema().table_id("actor").unwrap();
        let probe = move |value: &str| SelectSpec {
            select: vec![SelectItem::column(name)],
            join: JoinTree::single(actor),
            predicates: vec![Predicate::new(name, CmpOp::Eq, Value::text(value))],
            ..Default::default()
        };

        // Seed the probe cache with a miss.
        assert_eq!(d.execute_cached(&probe("Brad Pitt")).unwrap().len(), 0);

        // An insert after the index build must be visible through both the
        // cache layer (invalidation) and the index path itself.
        d.insert("actor", vec![Value::int(3), Value::text("Brad Pitt"), Value::int(1963)]).unwrap();
        assert_eq!(d.execute_cached(&probe("Brad Pitt")).unwrap().len(), 1, "stale cache entry");
        let indexed = execute_with(&d, &probe("Brad Pitt"), &ExecOptions::default()).unwrap();
        assert_eq!(indexed.result.len(), 1);
        assert!(indexed.metrics.rows_via_index > 0, "probe must be served via the index");

        // Same for an in-place update: the old key must vacate the index,
        // the new key must be found, and no cached probe may serve either
        // value stale.
        assert_eq!(d.execute_cached(&probe("Tom Hanks")).unwrap().len(), 1);
        d.update_cell("actor", 0, "name", Value::text("Thomas Hanks")).unwrap();
        assert_eq!(d.execute_cached(&probe("Tom Hanks")).unwrap().len(), 0, "stale old key");
        let moved = execute_with(&d, &probe("Thomas Hanks"), &ExecOptions::default()).unwrap();
        assert_eq!(moved.result.len(), 1);
        assert!(moved.metrics.rows_via_index > 0);

        // The incremental maintenance must equal a rebuild exactly.
        let incremental = d.index_stats(name).unwrap();
        d.rebuild_index();
        assert_eq!(incremental, d.index_stats(name).unwrap());
    }
}
