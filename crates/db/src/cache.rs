//! Probe/result memo cache for verification probes.
//!
//! The Duoquest verifier issues enormous numbers of nearly identical
//! `SELECT … LIMIT 1` probes: sibling states in the GPQE search tree share
//! projections, predicates and join paths, so the same probe spec is executed
//! over and over. This cache memoizes executor results keyed on a canonical
//! hash of the [`SelectSpec`], so repeated probes are answered without
//! touching the join pipeline.
//!
//! Design:
//!
//! * **Sharded.** Entries live in [`SHARD_COUNT`] independent `RwLock`ed hash
//!   maps selected by key hash, so parallel synthesis workers rarely contend
//!   on the same lock, and read-mostly traffic (cache hits) takes only shared
//!   locks.
//! * **Collision-safe.** The full spec is the map key (the hash only picks
//!   the shard); two distinct specs can never alias an entry.
//! * **Shared results.** Values are `Arc<ResultSet>` so a hit is a pointer
//!   clone, not a row copy.
//! * **Observable.** Atomic hit/miss/byte counters feed the engine's
//!   `EnumerationStats`, making cache effectiveness visible per synthesis run.
//! * **Segment-rotation eviction.** Each shard keeps two generations of
//!   entries, a *fresh* and a *stale* map. Inserts land in the fresh map; a
//!   stale hit promotes the entry back to fresh. When an insert would push a
//!   shard's fresh payload past half its byte budget (the cache cap split
//!   evenly across shards), the shard **rotates** first: the stale
//!   generation is dropped, fresh becomes stale, and a new fresh generation
//!   starts. Entries untouched for two rotations therefore age out, while
//!   anything the workload keeps re-probing is promoted and survives
//!   indefinitely — so the hit rate stays high under churn instead of
//!   collapsing the way the previous design (stop admitting beyond the cap)
//!   did.
//!
//! The byte budget defaults to [`ProbeCache::DEFAULT_MAX_BYTES`] and can be
//! tuned per cache ([`ProbeCache::set_max_bytes`], or
//! `Database::set_probe_cache_capacity`). Retention is strictly bounded by
//! the budget: each generation stays within half a shard's slice (inserts
//! rotate first, promotions that would overflow are skipped, and a result
//! too large for half a slice on its own is returned uncached).
//!
//! # Truncated entries
//!
//! Since the executor became limit-aware, a probe may be executed under a
//! **row budget** and return only a prefix of the spec's result. Entries
//! therefore carry an **exactness bit**: an exact entry answers any request;
//! a truncated entry (its rows were cut at some budget) answers only
//! requests whose budget its row count still covers
//! ([`ProbeCache::get_budgeted`]). Re-executing with a larger budget
//! replaces the weaker entry in place.

use crate::executor::{ExecMetrics, ResultSet};
use crate::query::SelectSpec;
use std::collections::hash_map::{DefaultHasher, Entry as MapEntry};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Instant;

/// Number of independent shards; a power of two so shard selection is a mask.
pub const SHARD_COUNT: usize = 16;

/// Per-run hit/miss counters a caller can pass to
/// [`crate::database::Database::execute_cached_with`] to attribute cache
/// traffic to one synthesis run. Atomic so one counter set can be shared by
/// a run's worker threads; independent of the cache's own global counters,
/// so concurrent runs on the same database don't pollute each other's
/// statistics.
#[derive(Debug, Default)]
pub struct RunCacheCounters {
    /// Probes this run answered from the cache.
    pub hits: AtomicU64,
    /// Probes this run executed.
    pub misses: AtomicU64,
    /// Executor rows scanned by this run's cache misses
    /// (see [`ExecMetrics::rows_scanned`]).
    pub rows_scanned: AtomicU64,
    /// Probe-side rows the executor never pulled because a limit was already
    /// satisfied (see [`ExecMetrics::rows_short_circuited`]).
    pub rows_short_circuited: AtomicU64,
    /// Secondary-index lookups this run's cache misses performed
    /// (see [`ExecMetrics::index_lookups`]).
    pub index_lookups: AtomicU64,
    /// Rows served through index access paths
    /// (see [`ExecMetrics::rows_via_index`]).
    pub rows_via_index: AtomicU64,
    /// Executions cut short because the planner or a join step proved the
    /// remaining work empty (see [`ExecMetrics::probes_bailed_empty`]).
    pub probes_bailed_empty: AtomicU64,
    /// Misses this run resolved by waiting on another session's identical
    /// in-flight probe instead of executing (see [`InflightTable`]).
    pub single_flight_hits: AtomicU64,
    /// Misses for which this run was elected the single-flight leader (it
    /// executed the probe and fanned the result out to any waiters).
    pub single_flight_leaders: AtomicU64,
    /// Microseconds this run's probes spent parked waiting for another
    /// session's leader to finish (wall-clock, observational only).
    pub single_flight_wait_us: AtomicU64,
}

impl RunCacheCounters {
    /// Current `(hits, misses)` totals.
    pub fn snapshot(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }

    /// Current `(rows_scanned, rows_short_circuited)` totals.
    pub fn scan_snapshot(&self) -> (u64, u64) {
        (
            self.rows_scanned.load(Ordering::Relaxed),
            self.rows_short_circuited.load(Ordering::Relaxed),
        )
    }

    /// Record one lookup outcome.
    pub fn record(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current `(index_lookups, rows_via_index, probes_bailed_empty)` totals.
    pub fn index_snapshot(&self) -> (u64, u64, u64) {
        (
            self.index_lookups.load(Ordering::Relaxed),
            self.rows_via_index.load(Ordering::Relaxed),
            self.probes_bailed_empty.load(Ordering::Relaxed),
        )
    }

    /// Current `(single_flight_hits, single_flight_leaders,
    /// single_flight_wait_us)` totals.
    pub fn single_flight_snapshot(&self) -> (u64, u64, u64) {
        (
            self.single_flight_hits.load(Ordering::Relaxed),
            self.single_flight_leaders.load(Ordering::Relaxed),
            self.single_flight_wait_us.load(Ordering::Relaxed),
        )
    }

    /// Fold one execution's scan metrics into the run totals.
    pub fn record_scan(&self, metrics: &ExecMetrics) {
        self.rows_scanned.fetch_add(metrics.rows_scanned, Ordering::Relaxed);
        self.rows_short_circuited.fetch_add(metrics.rows_short_circuited, Ordering::Relaxed);
        self.index_lookups.fetch_add(metrics.index_lookups, Ordering::Relaxed);
        self.rows_via_index.fetch_add(metrics.rows_via_index, Ordering::Relaxed);
        self.probes_bailed_empty.fetch_add(metrics.probes_bailed_empty, Ordering::Relaxed);
    }
}

/// A probe answer handed out by the cache layer: the (possibly truncated)
/// rows plus whether they are the spec's complete result.
#[derive(Debug, Clone)]
pub struct CachedProbe {
    /// The result rows. When `exact` is `false` they are a prefix of the
    /// spec's full result, cut at some row budget — possibly a *larger*
    /// budget than the request's, since entries are served as stored, never
    /// re-truncated per request.
    pub rows: Arc<ResultSet>,
    /// Whether `rows` is the complete result of the spec.
    pub exact: bool,
}

/// A point-in-time snapshot of the cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Probes answered from the cache.
    pub hits: u64,
    /// Probes that had to run the executor.
    pub misses: u64,
    /// Estimated bytes of cached result payload currently retained.
    pub bytes: u64,
    /// Number of cached entries.
    pub entries: u64,
    /// Segment rotations performed (generations of entries aged out).
    pub rotations: u64,
    /// Cache misses routed through the single-flight in-flight probe table
    /// (see [`InflightTable`]).
    pub single_flight_lookups: u64,
    /// Routed misses resolved by waiting on another session's identical
    /// in-flight probe instead of executing it again.
    pub single_flight_hits: u64,
    /// Routed misses that were elected leader and executed the probe.
    /// Conservation invariant: `single_flight_lookups ==
    /// single_flight_hits + single_flight_leaders` at quiescence.
    pub single_flight_leaders: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; 0 when the cache saw no traffic.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter difference vs an earlier snapshot (for per-run statistics).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            bytes: self.bytes,
            entries: self.entries,
            rotations: self.rotations.saturating_sub(earlier.rotations),
            single_flight_lookups: self
                .single_flight_lookups
                .saturating_sub(earlier.single_flight_lookups),
            single_flight_hits: self.single_flight_hits.saturating_sub(earlier.single_flight_hits),
            single_flight_leaders: self
                .single_flight_leaders
                .saturating_sub(earlier.single_flight_leaders),
        }
    }
}

/// One memoized probe result with its exactness bit.
#[derive(Debug, Clone)]
struct Entry {
    result: Arc<ResultSet>,
    exact: bool,
}

impl Entry {
    /// Whether this entry can answer a request with the given row budget
    /// (`None` means the full result is required).
    fn serves(&self, budget: Option<usize>) -> bool {
        self.exact || budget.is_some_and(|b| self.result.rows.len() >= b)
    }

    /// Whether this entry carries at least as much information as `other`
    /// (used to decide replacement when the same spec is re-inserted).
    fn at_least_as_strong_as(&self, other: &Entry) -> bool {
        self.exact || (!other.exact && self.result.rows.len() >= other.result.rows.len())
    }

    fn probe(&self) -> CachedProbe {
        CachedProbe { rows: Arc::clone(&self.result), exact: self.exact }
    }
}

/// Key of one in-flight probe: the spec's canonical fingerprint plus the
/// request's budget class. The budget is part of the key so a waiter is only
/// ever served a result executed under *its own* budget — the exactness bit
/// of a truncated leader result therefore always describes what the waiter
/// would have computed itself.
pub type InflightKey = (u64, Option<usize>);

/// State of one in-flight probe execution, guarded by its slot's mutex.
#[derive(Debug)]
enum SlotState {
    /// A leader is executing the probe; waiters park on the condvar.
    Running,
    /// The leader finished and published its result; waiters clone it.
    Done(CachedProbe),
    /// The leader gave up without publishing (panic, cancel, or executor
    /// error). The next thread to observe this state — a parked waiter or a
    /// fresh arrival — flips it back to `Running` and becomes the successor
    /// leader, so an abandoned probe never strands its waiters.
    Abandoned,
}

/// One in-flight probe: the execution state plus the condvar waiters park on.
#[derive(Debug)]
struct InflightSlot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

/// The single-flight in-flight probe table (`docs/EXECUTOR.md`).
///
/// When several live sessions miss the memo cache on the *same* probe at the
/// same time, only one of them — the **leader** — runs the executor; the rest
/// park on the slot's condvar and are handed the leader's published result.
/// The leader also inserts into the memo cache, so later arrivals hit the
/// memo path and never reach this table.
///
/// Accounting: every [`InflightTable::join`] counts exactly one lookup and
/// resolves as exactly one of leader or hit, so at quiescence
/// `lookups == leaders + hits` — the conservation invariant the DST oracle
/// checks.
#[derive(Debug, Default)]
pub struct InflightTable {
    slots: Mutex<HashMap<InflightKey, Arc<InflightSlot>>>,
    lookups: AtomicU64,
    hits: AtomicU64,
    leaders: AtomicU64,
}

/// Outcome of [`InflightTable::join`].
pub enum InflightJoin<'a> {
    /// The caller was elected leader: it must execute the probe and either
    /// [`LeaderGuard::publish`] the result or drop the guard (abandoning the
    /// slot to a successor).
    Leader(LeaderGuard<'a>),
    /// Another session's leader executed the probe; `probe` is its published
    /// result and `wait_us` how long this caller was parked.
    Served {
        /// The leader's published result.
        probe: CachedProbe,
        /// Microseconds spent parked on the slot's condvar.
        wait_us: u64,
    },
}

/// Leadership of one in-flight probe. Publish the executed result via
/// [`LeaderGuard::publish`]; dropping the guard without publishing marks the
/// slot abandoned so a waiter (or the next arrival) takes over — leader
/// panics and cancellations therefore never deadlock waiters.
pub struct LeaderGuard<'a> {
    table: &'a InflightTable,
    key: InflightKey,
    slot: Arc<InflightSlot>,
    published: bool,
}

impl LeaderGuard<'_> {
    /// Publish the executed result to every parked waiter and retire the
    /// slot. Late arrivals after this point miss the table and fall through
    /// to the memo cache, which the leader has already populated.
    pub fn publish(mut self, probe: CachedProbe) {
        {
            let mut state = self.slot.state.lock().expect("inflight slot lock poisoned");
            *state = SlotState::Done(probe);
        }
        self.slot.ready.notify_all();
        self.published = true;
        let mut slots = self.table.slots.lock().expect("inflight table lock poisoned");
        // Only retire the entry if it is still ours: a successor elected
        // after an abandon owns the slot now.
        if let MapEntry::Occupied(entry) = slots.entry(self.key) {
            if Arc::ptr_eq(entry.get(), &self.slot) {
                entry.remove();
            }
        }
    }
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if self.published {
            return;
        }
        // Abandon: wake everyone so a waiter can elect itself successor. The
        // map entry is kept so fresh arrivals can also take over; the
        // eventual successful leader retires it in `publish`.
        let mut state = self.slot.state.lock().expect("inflight slot lock poisoned");
        *state = SlotState::Abandoned;
        drop(state);
        self.slot.ready.notify_all();
    }
}

impl InflightTable {
    /// Join the in-flight execution of the probe identified by `key`:
    /// either become its leader or park until the leader publishes.
    pub fn join(&self, key: InflightKey) -> InflightJoin<'_> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let slot = {
            let mut slots = self.slots.lock().expect("inflight table lock poisoned");
            match slots.entry(key) {
                MapEntry::Vacant(vacant) => {
                    let slot = Arc::new(InflightSlot {
                        state: Mutex::new(SlotState::Running),
                        ready: Condvar::new(),
                    });
                    vacant.insert(Arc::clone(&slot));
                    self.leaders.fetch_add(1, Ordering::Relaxed);
                    return InflightJoin::Leader(LeaderGuard {
                        table: self,
                        key,
                        slot,
                        published: false,
                    });
                }
                MapEntry::Occupied(occupied) => Arc::clone(occupied.get()),
            }
        };
        let parked_at = Instant::now();
        let mut state = slot.state.lock().expect("inflight slot lock poisoned");
        loop {
            match &*state {
                SlotState::Running => {
                    state = slot.ready.wait(state).expect("inflight slot lock poisoned");
                }
                SlotState::Done(probe) => {
                    let probe = probe.clone();
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return InflightJoin::Served {
                        probe,
                        wait_us: parked_at.elapsed().as_micros() as u64,
                    };
                }
                SlotState::Abandoned => {
                    // Successor election: flip back to Running and lead.
                    *state = SlotState::Running;
                    self.leaders.fetch_add(1, Ordering::Relaxed);
                    drop(state);
                    return InflightJoin::Leader(LeaderGuard {
                        table: self,
                        key,
                        slot,
                        published: false,
                    });
                }
            }
        }
    }

    /// Current `(lookups, hits, leaders)` totals.
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.lookups.load(Ordering::Relaxed),
            self.hits.load(Ordering::Relaxed),
            self.leaders.load(Ordering::Relaxed),
        )
    }
}

/// Two generations of memoized entries plus their byte accounting; one per
/// shard, guarded by the shard's lock.
#[derive(Debug, Default)]
struct Segments {
    fresh: HashMap<SelectSpec, Entry>,
    stale: HashMap<SelectSpec, Entry>,
    fresh_bytes: u64,
    stale_bytes: u64,
}

impl Segments {
    fn entries(&self) -> u64 {
        (self.fresh.len() + self.stale.len()) as u64
    }

    fn bytes(&self) -> u64 {
        self.fresh_bytes + self.stale_bytes
    }

    /// Age out the stale generation and start a new fresh one.
    fn rotate(&mut self) {
        self.stale = std::mem::take(&mut self.fresh);
        self.stale_bytes = self.fresh_bytes;
        self.fresh_bytes = 0;
    }
}

/// The sharded probe/result memo cache with segment-rotation eviction.
#[derive(Debug)]
pub struct ProbeCache {
    shards: [RwLock<Segments>; SHARD_COUNT],
    inflight: InflightTable,
    hits: AtomicU64,
    misses: AtomicU64,
    rotations: AtomicU64,
    max_bytes: AtomicU64,
}

impl Default for ProbeCache {
    fn default() -> Self {
        ProbeCache::with_max_bytes(Self::DEFAULT_MAX_BYTES)
    }
}

impl ProbeCache {
    /// Default byte budget for the cached payload (64 MiB).
    pub const DEFAULT_MAX_BYTES: u64 = 64 << 20;

    /// Create a cache with an explicit byte budget (split evenly across the
    /// shards; each shard rotates generations at half its slice, so total
    /// retention stays within the budget).
    pub fn with_max_bytes(max_bytes: u64) -> Self {
        ProbeCache {
            shards: Default::default(),
            inflight: InflightTable::default(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            rotations: AtomicU64::new(0),
            max_bytes: AtomicU64::new(max_bytes.max(1)),
        }
    }

    /// Replace the byte budget. Takes effect on subsequent inserts; a smaller
    /// budget shrinks the cache through the normal rotation churn.
    pub fn set_max_bytes(&self, max_bytes: u64) {
        self.max_bytes.store(max_bytes.max(1), Ordering::Relaxed);
    }

    /// The current byte budget.
    pub fn max_bytes(&self) -> u64 {
        self.max_bytes.load(Ordering::Relaxed)
    }

    /// Canonical hash of a spec. Deterministic within a process; used for
    /// shard selection (the map key is the full spec, so hash collisions are
    /// harmless).
    pub fn fingerprint(spec: &SelectSpec) -> u64 {
        let mut hasher = DefaultHasher::new();
        spec.hash(&mut hasher);
        hasher.finish()
    }

    fn shard(&self, fingerprint: u64) -> &RwLock<Segments> {
        &self.shards[(fingerprint as usize) & (SHARD_COUNT - 1)]
    }

    /// A shard rotates when its fresh generation outgrows half the shard's
    /// slice of the byte budget, so fresh + stale stay within the slice.
    fn rotation_threshold(&self) -> u64 {
        (self.max_bytes.load(Ordering::Relaxed) / SHARD_COUNT as u64 / 2).max(1)
    }

    /// Look up a memoized **exact** result (compatibility wrapper over
    /// [`ProbeCache::get_budgeted`] with no budget).
    pub fn get(&self, spec: &SelectSpec) -> Option<Arc<ResultSet>> {
        self.get_budgeted(spec, None).map(|p| p.rows)
    }

    /// Look up a memoized result that can answer a request with the given
    /// row budget: an exact entry answers anything; a truncated entry
    /// answers only budgets its row count covers. Counts a hit or miss; a
    /// stale-generation hit promotes the entry back into the fresh
    /// generation so entries the workload keeps re-probing survive rotation.
    pub fn get_budgeted(&self, spec: &SelectSpec, budget: Option<usize>) -> Option<CachedProbe> {
        let shard = self.shard(Self::fingerprint(spec));
        {
            let segments = shard.read().expect("probe cache lock poisoned");
            if let Some(found) = segments.fresh.get(spec).filter(|e| e.serves(budget)) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(found.probe());
            }
            match segments.stale.get(spec).filter(|e| e.serves(budget)) {
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
                Some(found) => {
                    // Promotion would overflow the fresh generation: serve the
                    // stale hit directly under the shared lock. A hot set too
                    // big to promote must not degrade every hit to the write
                    // lock.
                    let cost = estimate_bytes(&found.result);
                    if segments.fresh_bytes + cost > self.rotation_threshold() {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Some(found.probe());
                    }
                }
            }
        }
        // Stale hit: promote under the write lock (re-checking, since the
        // entry may have moved or vanished between the locks). Promotion is
        // skipped when it would push the fresh generation past its half of
        // the budget slice — the entry is still served, it just stays stale —
        // so fresh and stale each stay within half a slice and retention
        // never exceeds the configured budget. A fresh generation already
        // holding a copy keeps the stronger of the two.
        let mut segments = shard.write().expect("probe cache lock poisoned");
        if let Some(entry) = segments.stale.get(spec).filter(|e| e.serves(budget)) {
            let cost = estimate_bytes(&entry.result);
            let probe = entry.probe();
            let fresh_has_stronger =
                segments.fresh.get(spec).map(|f| f.at_least_as_strong_as(entry)).unwrap_or(false);
            if !fresh_has_stronger && segments.fresh_bytes + cost <= self.rotation_threshold() {
                let (key, value) =
                    segments.stale.remove_entry(spec).expect("checked under the same lock");
                segments.stale_bytes = segments.stale_bytes.saturating_sub(cost);
                if let Some(old) = segments.fresh.insert(key, value) {
                    segments.fresh_bytes =
                        segments.fresh_bytes.saturating_sub(estimate_bytes(&old.result));
                }
                segments.fresh_bytes += cost;
            }
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(probe);
        }
        match segments.fresh.get(spec).filter(|e| e.serves(budget)) {
            Some(found) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(found.probe())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Memoize an **exact** result (compatibility wrapper over
    /// [`ProbeCache::insert_budgeted`]).
    pub fn insert(&self, spec: &SelectSpec, result: ResultSet) -> Arc<ResultSet> {
        self.insert_budgeted(spec, result, true).rows
    }

    /// Memoize a result in the fresh generation, rotating the shard's
    /// generations first if the insert would overflow the fresh half of the
    /// shard's budget slice — so fresh + stale never exceed the slice and
    /// total retention never exceeds the configured budget. A result larger
    /// than the fresh half on its own is handed back uncached.
    ///
    /// `exact` marks whether `result` is the spec's complete result (as
    /// opposed to a prefix truncated at a row budget). An existing entry is
    /// only replaced by an at-least-as-strong one (exact beats truncated,
    /// longer truncations beat shorter), so a racing shorter probe can never
    /// downgrade the cache. Returns the entry that ends up serving the spec.
    pub fn insert_budgeted(
        &self,
        spec: &SelectSpec,
        result: ResultSet,
        exact: bool,
    ) -> CachedProbe {
        let entry = Entry { result: Arc::new(result), exact };
        let cost = estimate_bytes(&entry.result);
        let threshold = self.rotation_threshold();
        if cost > threshold {
            return entry.probe(); // would blow the budget by itself: don't retain
        }
        let shard = self.shard(Self::fingerprint(spec));
        let mut segments = shard.write().expect("probe cache lock poisoned");
        // A racing worker may have inserted the same probe; keep the
        // stronger of the two copies.
        if let Some(existing) = segments.fresh.get(spec) {
            if existing.at_least_as_strong_as(&entry) {
                return existing.probe();
            }
            let old = segments.fresh.remove(spec).expect("checked under the same lock");
            segments.fresh_bytes = segments.fresh_bytes.saturating_sub(estimate_bytes(&old.result));
        }
        if let Some(old) = segments.stale.get(spec) {
            if old.at_least_as_strong_as(&entry) {
                let probe = old.probe();
                return probe;
            }
            let old = segments.stale.remove(spec).expect("checked under the same lock");
            segments.stale_bytes = segments.stale_bytes.saturating_sub(estimate_bytes(&old.result));
        }
        if segments.fresh_bytes + cost > threshold {
            segments.rotate();
            self.rotations.fetch_add(1, Ordering::Relaxed);
        }
        segments.fresh_bytes += cost;
        let probe = entry.probe();
        segments.fresh.insert(spec.clone(), entry);
        probe
    }

    /// The single-flight in-flight probe table sharing this cache's keyspace.
    /// Misses of [`crate::database::Database::execute_cached_budgeted`] are
    /// routed through it (unless single-flight is disabled on the database)
    /// so concurrent identical probes execute once.
    pub fn inflight(&self) -> &InflightTable {
        &self.inflight
    }

    /// Drop every entry (called when the underlying data changes).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut segments = shard.write().expect("probe cache lock poisoned");
            *segments = Segments::default();
        }
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> CacheStats {
        let (mut bytes, mut entries) = (0u64, 0u64);
        for shard in &self.shards {
            let segments = shard.read().expect("probe cache lock poisoned");
            bytes += segments.bytes();
            entries += segments.entries();
        }
        let (single_flight_lookups, single_flight_hits, single_flight_leaders) =
            self.inflight.counters();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bytes,
            entries,
            rotations: self.rotations.load(Ordering::Relaxed),
            single_flight_lookups,
            single_flight_hits,
            single_flight_leaders,
        }
    }
}

/// Rough resident size of a cached result (headers + row payload).
fn estimate_bytes(rs: &ResultSet) -> u64 {
    let header: usize = rs.columns.iter().map(|c| c.len() + 24).sum::<usize>() + 8;
    let rows: usize = rs
        .rows
        .iter()
        .map(|r| {
            r.0.iter()
                .map(|v| match v {
                    crate::types::Value::Text(s) => s.len() + 32,
                    _ => 16,
                })
                .sum::<usize>()
                + 24
        })
        .sum();
    (header + rows) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::join_graph::JoinTree;
    use crate::query::SelectItem;
    use crate::schema::{ColumnDef, Schema, TableDef};
    use crate::types::Value;

    fn db() -> Database {
        let mut s = Schema::new("t");
        s.add_table(TableDef::new(
            "items",
            vec![ColumnDef::number("id"), ColumnDef::text("name")],
            Some(0),
        ));
        let mut db = Database::new(s).unwrap();
        db.insert("items", vec![Value::int(1), Value::text("alpha")]).unwrap();
        db.insert("items", vec![Value::int(2), Value::text("beta")]).unwrap();
        db.rebuild_index();
        db
    }

    fn spec(db: &Database) -> SelectSpec {
        SelectSpec {
            select: vec![SelectItem::column(db.schema().column_id("items", "name").unwrap())],
            join: JoinTree::single(db.schema().table_id("items").unwrap()),
            limit: Some(1),
            ..Default::default()
        }
    }

    #[test]
    fn hit_after_miss_and_counters() {
        let db = db();
        let cache = ProbeCache::default();
        let s = spec(&db);
        assert!(cache.get(&s).is_none());
        let rs = crate::executor::execute(&db, &s).unwrap();
        cache.insert(&s, rs);
        let hit = cache.get(&s).expect("hit after insert");
        assert_eq!(hit.len(), 1);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes > 0);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_specs_do_not_alias() {
        let db = db();
        let cache = ProbeCache::default();
        let a = spec(&db);
        let mut b = spec(&db);
        b.limit = Some(2);
        cache.insert(&a, crate::executor::execute(&db, &a).unwrap());
        cache.insert(&b, crate::executor::execute(&db, &b).unwrap());
        assert_eq!(cache.get(&a).unwrap().len(), 1);
        assert_eq!(cache.get(&b).unwrap().len(), 2);
    }

    #[test]
    fn clear_resets_entries_and_bytes() {
        let db = db();
        let cache = ProbeCache::default();
        let s = spec(&db);
        cache.insert(&s, crate::executor::execute(&db, &s).unwrap());
        assert_eq!(cache.stats().entries, 1);
        cache.clear();
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.bytes, 0);
        assert!(cache.get(&s).is_none());
    }

    #[test]
    fn fingerprint_is_stable_and_spec_sensitive() {
        let db = db();
        let a = spec(&db);
        let mut b = spec(&db);
        b.distinct = true;
        assert_eq!(ProbeCache::fingerprint(&a), ProbeCache::fingerprint(&a));
        assert_ne!(ProbeCache::fingerprint(&a), ProbeCache::fingerprint(&b));
    }

    #[test]
    fn stats_since_subtracts_counters() {
        let earlier = CacheStats {
            hits: 2,
            misses: 3,
            bytes: 10,
            entries: 1,
            rotations: 1,
            single_flight_lookups: 4,
            single_flight_hits: 1,
            single_flight_leaders: 3,
        };
        let later = CacheStats {
            hits: 7,
            misses: 4,
            bytes: 20,
            entries: 2,
            rotations: 3,
            single_flight_lookups: 9,
            single_flight_hits: 2,
            single_flight_leaders: 7,
        };
        let delta = later.since(&earlier);
        assert_eq!(delta.hits, 5);
        assert_eq!(delta.misses, 1);
        assert_eq!(delta.entries, 2);
        assert_eq!(delta.rotations, 2);
        assert_eq!(delta.single_flight_lookups, 5);
        assert_eq!(delta.single_flight_hits, 1);
        assert_eq!(delta.single_flight_leaders, 4);
    }

    /// Distinct specs (different limits) that all land in one small cache.
    fn spec_with_limit(db: &Database, limit: usize) -> SelectSpec {
        let mut s = spec(db);
        s.limit = Some(limit);
        s
    }

    #[test]
    fn rotation_evicts_cold_entries_instead_of_refusing_admission() {
        let db = db();
        // A budget small enough that a stream of distinct probes forces many
        // rotations (each cached result is a few hundred bytes).
        let cache = ProbeCache::with_max_bytes(SHARD_COUNT as u64 * 2_000);
        for limit in 1..200 {
            let s = spec_with_limit(&db, limit);
            cache.insert(&s, crate::executor::execute(&db, &s).unwrap());
        }
        let stats = cache.stats();
        assert!(stats.rotations > 0, "small budget must force rotations: {stats:?}");
        // Old entries aged out; retention stays within the budget.
        assert!(stats.bytes <= cache.max_bytes(), "{stats:?}");
        assert!(stats.entries < 199, "{stats:?}");
        // Crucially, the *latest* probes are still being cached (the old
        // admission-control design stopped caching entirely at this point).
        let last = spec_with_limit(&db, 199);
        assert!(cache.get(&last).is_some(), "fresh entries must still be admitted");
    }

    #[test]
    fn stale_hit_promotes_entry_across_rotations() {
        let db = db();
        let cache = ProbeCache::default();
        let hot = spec_with_limit(&db, 1);
        cache.insert(&hot, crate::executor::execute(&db, &hot).unwrap());
        // Force a rotation of the hot entry's shard by hand.
        let shard = cache.shard(ProbeCache::fingerprint(&hot));
        shard.write().unwrap().rotate();
        // The entry is now stale; a hit must return it and promote it back.
        assert!(cache.get(&hot).is_some(), "stale generation still serves hits");
        let segments = shard.read().unwrap();
        assert!(segments.fresh.contains_key(&hot), "hit must promote to fresh");
        assert!(!segments.stale.contains_key(&hot));
        drop(segments);
        // A second hand rotation + hit keeps it alive indefinitely.
        shard.write().unwrap().rotate();
        assert!(cache.get(&hot).is_some());
    }

    #[test]
    fn oversized_results_are_served_but_not_retained() {
        let db = db();
        // Budget so small that any real result exceeds half a shard slice.
        let cache = ProbeCache::with_max_bytes(SHARD_COUNT as u64 * 4);
        let s = spec(&db);
        let arc = cache.insert(&s, crate::executor::execute(&db, &s).unwrap());
        assert_eq!(arc.len(), 1, "caller still gets the result");
        let stats = cache.stats();
        assert_eq!(stats.entries, 0, "oversized results must not be retained: {stats:?}");
        assert_eq!(stats.bytes, 0);
    }

    #[test]
    fn retention_never_exceeds_the_budget_under_churn_and_promotion() {
        let db = db();
        let budget = SHARD_COUNT as u64 * 2_000;
        let cache = ProbeCache::with_max_bytes(budget);
        // Interleave a churning stream of distinct probes with re-probes of a
        // small hot set (exercising stale promotion next to rotation).
        for round in 0..5 {
            for limit in 1..150 {
                let s = spec_with_limit(&db, limit);
                if cache.get(&s).is_none() {
                    cache.insert(&s, crate::executor::execute(&db, &s).unwrap());
                }
                let hot = spec_with_limit(&db, 1 + (round % 3));
                let _ = cache.get(&hot);
                assert!(
                    cache.stats().bytes <= budget,
                    "retention exceeded the budget at round {round}, limit {limit}: {:?}",
                    cache.stats()
                );
            }
        }
    }

    #[test]
    fn set_max_bytes_takes_effect() {
        let cache = ProbeCache::default();
        assert_eq!(cache.max_bytes(), ProbeCache::DEFAULT_MAX_BYTES);
        cache.set_max_bytes(1024);
        assert_eq!(cache.max_bytes(), 1024);
        // Budget zero is clamped to one byte rather than dividing by zero.
        cache.set_max_bytes(0);
        assert_eq!(cache.max_bytes(), 1);
        assert_eq!(cache.rotation_threshold(), 1);
    }

    fn empty_probe() -> CachedProbe {
        CachedProbe { rows: Arc::new(ResultSet::default()), exact: true }
    }

    #[test]
    fn single_flight_leader_fans_out_to_waiters() {
        let table = Arc::new(InflightTable::default());
        let key: InflightKey = (42, Some(1));
        let leader = match table.join(key) {
            InflightJoin::Leader(g) => g,
            InflightJoin::Served { .. } => panic!("first join must lead"),
        };
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let table = Arc::clone(&table);
                std::thread::spawn(move || match table.join(key) {
                    InflightJoin::Served { probe, .. } => probe.exact,
                    InflightJoin::Leader(_) => panic!("slot already led"),
                })
            })
            .collect();
        // Give the waiters a moment to park (correct either way).
        std::thread::sleep(std::time::Duration::from_millis(10));
        leader.publish(empty_probe());
        for w in waiters {
            assert!(w.join().unwrap());
        }
        let (lookups, hits, leaders) = table.counters();
        assert_eq!((lookups, hits, leaders), (5, 4, 1));
        assert_eq!(lookups, hits + leaders, "conservation invariant");
        assert!(table.slots.lock().unwrap().is_empty(), "published slot must retire");
    }

    #[test]
    fn abandoned_leader_elects_a_successor() {
        let table = Arc::new(InflightTable::default());
        let key: InflightKey = (7, None);
        let leader = match table.join(key) {
            InflightJoin::Leader(g) => g,
            InflightJoin::Served { .. } => panic!("first join must lead"),
        };
        let waiter = {
            let table = Arc::clone(&table);
            std::thread::spawn(move || match table.join(key) {
                InflightJoin::Leader(g) => {
                    g.publish(empty_probe());
                    true
                }
                InflightJoin::Served { .. } => false,
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        drop(leader); // abandon without publishing
        assert!(waiter.join().unwrap(), "waiter must take over an abandoned slot");
        let (lookups, hits, leaders) = table.counters();
        assert_eq!((lookups, hits, leaders), (2, 0, 2));
        assert_eq!(lookups, hits + leaders, "conservation invariant");
        assert!(table.slots.lock().unwrap().is_empty(), "successor publish must retire");
    }

    #[test]
    fn fresh_arrival_takes_over_an_abandoned_slot() {
        let table = InflightTable::default();
        let key: InflightKey = (9, Some(3));
        match table.join(key) {
            InflightJoin::Leader(g) => drop(g), // abandon immediately, nobody waiting
            InflightJoin::Served { .. } => panic!("first join must lead"),
        }
        // The next arrival must become the successor, not hang.
        match table.join(key) {
            InflightJoin::Leader(g) => g.publish(empty_probe()),
            InflightJoin::Served { .. } => panic!("abandoned slot must re-elect"),
        }
        let (lookups, hits, leaders) = table.counters();
        assert_eq!((lookups, hits, leaders), (2, 0, 2));
    }
}
