//! Probe/result memo cache for verification probes.
//!
//! The Duoquest verifier issues enormous numbers of nearly identical
//! `SELECT … LIMIT 1` probes: sibling states in the GPQE search tree share
//! projections, predicates and join paths, so the same probe spec is executed
//! over and over. This cache memoizes executor results keyed on a canonical
//! hash of the [`SelectSpec`], so repeated probes are answered without
//! touching the join pipeline.
//!
//! Design:
//!
//! * **Sharded.** Entries live in [`SHARD_COUNT`] independent `RwLock`ed hash
//!   maps selected by key hash, so parallel synthesis workers rarely contend
//!   on the same lock, and read-mostly traffic (cache hits) takes only shared
//!   locks.
//! * **Collision-safe.** The full spec is the map key (the hash only picks
//!   the shard); two distinct specs can never alias an entry.
//! * **Shared results.** Values are `Arc<ResultSet>` so a hit is a pointer
//!   clone, not a row copy.
//! * **Observable.** Atomic hit/miss/byte counters feed the engine's
//!   `EnumerationStats`, making cache effectiveness visible per synthesis run.
//!
//! The cache caps its payload at [`ProbeCache::DEFAULT_MAX_BYTES`]; once the
//! estimated resident size exceeds the cap, new results are still returned to
//! the caller but no longer retained (simple admission control — probe
//! results are tiny, so the cap is rarely hit in practice).

use crate::executor::ResultSet;
use crate::query::SelectSpec;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Number of independent shards; a power of two so shard selection is a mask.
pub const SHARD_COUNT: usize = 16;

/// Per-run hit/miss counters a caller can pass to
/// [`crate::database::Database::execute_cached_with`] to attribute cache
/// traffic to one synthesis run. Atomic so one counter set can be shared by
/// a run's worker threads; independent of the cache's own global counters,
/// so concurrent runs on the same database don't pollute each other's
/// statistics.
#[derive(Debug, Default)]
pub struct RunCacheCounters {
    /// Probes this run answered from the cache.
    pub hits: AtomicU64,
    /// Probes this run executed.
    pub misses: AtomicU64,
}

impl RunCacheCounters {
    /// Current `(hits, misses)` totals.
    pub fn snapshot(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }

    /// Record one lookup outcome.
    pub fn record(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A point-in-time snapshot of the cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Probes answered from the cache.
    pub hits: u64,
    /// Probes that had to run the executor.
    pub misses: u64,
    /// Estimated bytes of cached result payload currently retained.
    pub bytes: u64,
    /// Number of cached entries.
    pub entries: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; 0 when the cache saw no traffic.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter difference vs an earlier snapshot (for per-run statistics).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            bytes: self.bytes,
            entries: self.entries,
        }
    }
}

/// The sharded probe/result memo cache.
#[derive(Debug, Default)]
pub struct ProbeCache {
    shards: [RwLock<HashMap<SelectSpec, Arc<ResultSet>>>; SHARD_COUNT],
    hits: AtomicU64,
    misses: AtomicU64,
    bytes: AtomicU64,
}

impl ProbeCache {
    /// Retention cap on the estimated cached payload (64 MiB).
    pub const DEFAULT_MAX_BYTES: u64 = 64 << 20;

    /// Canonical hash of a spec. Deterministic within a process; used for
    /// shard selection (the map key is the full spec, so hash collisions are
    /// harmless).
    pub fn fingerprint(spec: &SelectSpec) -> u64 {
        let mut hasher = DefaultHasher::new();
        spec.hash(&mut hasher);
        hasher.finish()
    }

    fn shard(&self, fingerprint: u64) -> &RwLock<HashMap<SelectSpec, Arc<ResultSet>>> {
        &self.shards[(fingerprint as usize) & (SHARD_COUNT - 1)]
    }

    /// Look up a memoized result. Counts a hit or miss.
    pub fn get(&self, spec: &SelectSpec) -> Option<Arc<ResultSet>> {
        let shard = self.shard(Self::fingerprint(spec));
        let found = shard.read().expect("probe cache lock poisoned").get(spec).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Memoize a result (no-op beyond the byte cap). Returns the stored arc.
    pub fn insert(&self, spec: &SelectSpec, result: ResultSet) -> Arc<ResultSet> {
        let result = Arc::new(result);
        let cost = estimate_bytes(&result);
        if self.bytes.load(Ordering::Relaxed) + cost > Self::DEFAULT_MAX_BYTES {
            return result; // over budget: hand the result back uncached
        }
        let shard = self.shard(Self::fingerprint(spec));
        let mut map = shard.write().expect("probe cache lock poisoned");
        // A racing worker may have inserted the same probe; keep one copy.
        let entry = map.entry(spec.clone()).or_insert_with(|| {
            self.bytes.fetch_add(cost, Ordering::Relaxed);
            Arc::clone(&result)
        });
        Arc::clone(entry)
    }

    /// Drop every entry (called when the underlying data changes).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().expect("probe cache lock poisoned").clear();
        }
        self.bytes.store(0, Ordering::Relaxed);
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.read().expect("probe cache lock poisoned").len() as u64)
                .sum(),
        }
    }
}

/// Rough resident size of a cached result (headers + row payload).
fn estimate_bytes(rs: &ResultSet) -> u64 {
    let header: usize = rs.columns.iter().map(|c| c.len() + 24).sum::<usize>() + 8;
    let rows: usize = rs
        .rows
        .iter()
        .map(|r| {
            r.0.iter()
                .map(|v| match v {
                    crate::types::Value::Text(s) => s.len() + 32,
                    _ => 16,
                })
                .sum::<usize>()
                + 24
        })
        .sum();
    (header + rows) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::join_graph::JoinTree;
    use crate::query::SelectItem;
    use crate::schema::{ColumnDef, Schema, TableDef};
    use crate::types::Value;

    fn db() -> Database {
        let mut s = Schema::new("t");
        s.add_table(TableDef::new(
            "items",
            vec![ColumnDef::number("id"), ColumnDef::text("name")],
            Some(0),
        ));
        let mut db = Database::new(s).unwrap();
        db.insert("items", vec![Value::int(1), Value::text("alpha")]).unwrap();
        db.insert("items", vec![Value::int(2), Value::text("beta")]).unwrap();
        db.rebuild_index();
        db
    }

    fn spec(db: &Database) -> SelectSpec {
        SelectSpec {
            select: vec![SelectItem::column(db.schema().column_id("items", "name").unwrap())],
            join: JoinTree::single(db.schema().table_id("items").unwrap()),
            limit: Some(1),
            ..Default::default()
        }
    }

    #[test]
    fn hit_after_miss_and_counters() {
        let db = db();
        let cache = ProbeCache::default();
        let s = spec(&db);
        assert!(cache.get(&s).is_none());
        let rs = crate::executor::execute(&db, &s).unwrap();
        cache.insert(&s, rs);
        let hit = cache.get(&s).expect("hit after insert");
        assert_eq!(hit.len(), 1);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes > 0);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_specs_do_not_alias() {
        let db = db();
        let cache = ProbeCache::default();
        let a = spec(&db);
        let mut b = spec(&db);
        b.limit = Some(2);
        cache.insert(&a, crate::executor::execute(&db, &a).unwrap());
        cache.insert(&b, crate::executor::execute(&db, &b).unwrap());
        assert_eq!(cache.get(&a).unwrap().len(), 1);
        assert_eq!(cache.get(&b).unwrap().len(), 2);
    }

    #[test]
    fn clear_resets_entries_and_bytes() {
        let db = db();
        let cache = ProbeCache::default();
        let s = spec(&db);
        cache.insert(&s, crate::executor::execute(&db, &s).unwrap());
        assert_eq!(cache.stats().entries, 1);
        cache.clear();
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.bytes, 0);
        assert!(cache.get(&s).is_none());
    }

    #[test]
    fn fingerprint_is_stable_and_spec_sensitive() {
        let db = db();
        let a = spec(&db);
        let mut b = spec(&db);
        b.distinct = true;
        assert_eq!(ProbeCache::fingerprint(&a), ProbeCache::fingerprint(&a));
        assert_ne!(ProbeCache::fingerprint(&a), ProbeCache::fingerprint(&b));
    }

    #[test]
    fn stats_since_subtracts_counters() {
        let earlier = CacheStats { hits: 2, misses: 3, bytes: 10, entries: 1 };
        let later = CacheStats { hits: 7, misses: 4, bytes: 20, entries: 2 };
        let delta = later.since(&earlier);
        assert_eq!(delta.hits, 5);
        assert_eq!(delta.misses, 1);
        assert_eq!(delta.entries, 2);
    }
}
