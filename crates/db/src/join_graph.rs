//! Schema join graph and Steiner-tree join path construction.
//!
//! Duoquest's progressive join path construction (paper Algorithm 2) computes a
//! Steiner tree over the graph whose nodes are tables and whose edges are
//! foreign-key → primary-key relationships, with unit edge weights, and then
//! extends it with additional single-hop joins to cover queries that mention
//! extra tables only in the `FROM` clause.

use crate::error::{DbError, DbResult};
use crate::schema::{ForeignKey, Schema, TableId};
use std::collections::{HashMap, HashSet, VecDeque};

/// An undirected join edge between two tables, realised by a foreign key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JoinEdge {
    /// The foreign key realising the edge (`from` is the FK side, `to` the PK side).
    pub fk: ForeignKey,
}

impl JoinEdge {
    /// The two tables connected by this edge.
    pub fn tables(&self) -> (TableId, TableId) {
        (self.fk.from.table, self.fk.to.table)
    }

    /// The table on the other side of `t`, if `t` is an endpoint.
    pub fn other(&self, t: TableId) -> Option<TableId> {
        let (a, b) = self.tables();
        if t == a {
            Some(b)
        } else if t == b {
            Some(a)
        } else {
            None
        }
    }
}

/// A connected join tree: the set of tables in the `FROM` clause and the FK
/// edges joining them. A single-table "tree" has no edges.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct JoinTree {
    /// Tables in the FROM clause, sorted for canonical comparison.
    pub tables: Vec<TableId>,
    /// FK join edges, sorted for canonical comparison.
    pub edges: Vec<JoinEdge>,
}

impl JoinTree {
    /// A join tree consisting of a single table.
    pub fn single(table: TableId) -> Self {
        JoinTree { tables: vec![table], edges: Vec::new() }
    }

    /// Construct and canonicalize a join tree.
    pub fn new(mut tables: Vec<TableId>, mut edges: Vec<JoinEdge>) -> Self {
        tables.sort();
        tables.dedup();
        edges.sort_by_key(|e| (e.fk.from, e.fk.to));
        edges.dedup();
        JoinTree { tables, edges }
    }

    /// Number of joins (edges). Used as the secondary tie-breaker during
    /// enumeration: shorter join paths are preferred (paper §3.3.4).
    pub fn join_length(&self) -> usize {
        self.edges.len()
    }

    /// Whether the tree contains the given table.
    pub fn contains(&self, table: TableId) -> bool {
        self.tables.contains(&table)
    }

    /// Whether every table is reachable from the first through the edges.
    pub fn is_connected(&self) -> bool {
        if self.tables.len() <= 1 {
            return true;
        }
        let mut seen: HashSet<TableId> = HashSet::new();
        let mut queue = VecDeque::new();
        queue.push_back(self.tables[0]);
        seen.insert(self.tables[0]);
        while let Some(t) = queue.pop_front() {
            for e in &self.edges {
                if let Some(o) = e.other(t) {
                    if self.tables.contains(&o) && seen.insert(o) {
                        queue.push_back(o);
                    }
                }
            }
        }
        seen.len() == self.tables.len()
    }
}

/// The schema join graph: tables as nodes, FK→PK relationships as edges.
#[derive(Debug, Clone)]
pub struct JoinGraph {
    adjacency: HashMap<TableId, Vec<JoinEdge>>,
    table_count: usize,
}

impl JoinGraph {
    /// Build the join graph of a schema.
    pub fn new(schema: &Schema) -> Self {
        let mut adjacency: HashMap<TableId, Vec<JoinEdge>> = HashMap::new();
        for t in 0..schema.table_count() {
            adjacency.entry(TableId(t)).or_default();
        }
        for fk in &schema.foreign_keys {
            let edge = JoinEdge { fk: *fk };
            adjacency.entry(fk.from.table).or_default().push(edge);
            adjacency.entry(fk.to.table).or_default().push(edge);
        }
        JoinGraph { adjacency, table_count: schema.table_count() }
    }

    /// Edges incident to a table.
    pub fn edges_of(&self, table: TableId) -> &[JoinEdge] {
        self.adjacency.get(&table).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of tables in the graph.
    pub fn table_count(&self) -> usize {
        self.table_count
    }

    /// Shortest path between two tables (BFS over unit-weight edges).
    /// Returns the edges along the path, or `None` if unreachable.
    pub fn shortest_path(&self, from: TableId, to: TableId) -> Option<Vec<JoinEdge>> {
        if from == to {
            return Some(Vec::new());
        }
        let mut prev: HashMap<TableId, (TableId, JoinEdge)> = HashMap::new();
        let mut queue = VecDeque::new();
        let mut seen = HashSet::new();
        queue.push_back(from);
        seen.insert(from);
        while let Some(t) = queue.pop_front() {
            for e in self.edges_of(t) {
                let o = e.other(t).expect("edge adjacency is consistent");
                if seen.insert(o) {
                    prev.insert(o, (t, *e));
                    if o == to {
                        // Reconstruct the path.
                        let mut path = Vec::new();
                        let mut cur = to;
                        while cur != from {
                            let (p, edge) = prev[&cur];
                            path.push(edge);
                            cur = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(o);
                }
            }
        }
        None
    }

    /// Approximate minimum Steiner tree over the given terminal tables using the
    /// classic metric-closure construction (shortest paths + greedy merge).
    /// With unit edge weights and the small schemas of the workloads this gives
    /// the same trees as the paper's formulation (which follows \[2\]).
    pub fn steiner_tree(&self, terminals: &[TableId]) -> DbResult<JoinTree> {
        let mut terms: Vec<TableId> = terminals.to_vec();
        terms.sort();
        terms.dedup();
        match terms.len() {
            0 => Err(DbError::InvalidQuery("steiner tree requires at least one terminal".into())),
            1 => Ok(JoinTree::single(terms[0])),
            _ => {
                let mut tables: HashSet<TableId> = HashSet::new();
                let mut edges: HashSet<JoinEdge> = HashSet::new();
                tables.insert(terms[0]);
                let mut remaining: Vec<TableId> = terms[1..].to_vec();
                // Greedily attach the closest remaining terminal to the tree built so far.
                while !remaining.is_empty() {
                    let mut best: Option<(usize, usize, Vec<JoinEdge>)> = None;
                    for (ri, r) in remaining.iter().enumerate() {
                        for t in &tables {
                            if let Some(path) = self.shortest_path(*t, *r) {
                                if best
                                    .as_ref()
                                    .map(|(_, len, _)| path.len() < *len)
                                    .unwrap_or(true)
                                {
                                    best = Some((ri, path.len(), path));
                                }
                            }
                        }
                    }
                    let Some((ri, _, path)) = best else {
                        return Err(DbError::DisconnectedJoin(format!(
                            "table {:?} is not reachable from the rest of the query",
                            remaining[0]
                        )));
                    };
                    for e in path {
                        let (a, b) = e.tables();
                        tables.insert(a);
                        tables.insert(b);
                        edges.insert(e);
                    }
                    tables.insert(remaining[ri]);
                    remaining.remove(ri);
                }
                Ok(JoinTree::new(tables.into_iter().collect(), edges.into_iter().collect()))
            }
        }
    }

    /// One-hop extensions of a join tree: for every FK edge with exactly one
    /// endpoint inside the tree, produce a new tree including the other table.
    /// This implements lines 10–12 of Algorithm 2.
    pub fn extensions(&self, tree: &JoinTree) -> Vec<JoinTree> {
        let mut out = Vec::new();
        for t in &tree.tables {
            for e in self.edges_of(*t) {
                let o = e.other(*t).expect("consistent adjacency");
                if !tree.contains(o) {
                    let mut tables = tree.tables.clone();
                    tables.push(o);
                    let mut edges = tree.edges.clone();
                    edges.push(*e);
                    let ext = JoinTree::new(tables, edges);
                    if !out.contains(&ext) {
                        out.push(ext);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, TableDef};

    /// actor -- starring -- movies, plus an isolated table.
    fn schema() -> Schema {
        let mut s = Schema::new("movies");
        s.add_table(TableDef::new(
            "actor",
            vec![ColumnDef::number("aid"), ColumnDef::text("name")],
            Some(0),
        ));
        s.add_table(TableDef::new(
            "movies",
            vec![ColumnDef::number("mid"), ColumnDef::text("name"), ColumnDef::number("year")],
            Some(0),
        ));
        s.add_table(TableDef::new(
            "starring",
            vec![ColumnDef::number("aid"), ColumnDef::number("mid")],
            None,
        ));
        s.add_table(TableDef::new("isolated", vec![ColumnDef::text("x")], None));
        s.add_foreign_key("starring", "aid", "actor", "aid").unwrap();
        s.add_foreign_key("starring", "mid", "movies", "mid").unwrap();
        s
    }

    #[test]
    fn shortest_path_through_bridge_table() {
        let s = schema();
        let g = JoinGraph::new(&s);
        let actor = s.table_id("actor").unwrap();
        let movies = s.table_id("movies").unwrap();
        let path = g.shortest_path(actor, movies).unwrap();
        assert_eq!(path.len(), 2);
        assert_eq!(g.shortest_path(actor, actor).unwrap().len(), 0);
        assert!(g.shortest_path(actor, s.table_id("isolated").unwrap()).is_none());
    }

    #[test]
    fn steiner_single_terminal() {
        let s = schema();
        let g = JoinGraph::new(&s);
        let actor = s.table_id("actor").unwrap();
        let t = g.steiner_tree(&[actor]).unwrap();
        assert_eq!(t.tables, vec![actor]);
        assert_eq!(t.join_length(), 0);
        assert!(t.is_connected());
    }

    #[test]
    fn steiner_connects_actor_and_movies_via_starring() {
        let s = schema();
        let g = JoinGraph::new(&s);
        let actor = s.table_id("actor").unwrap();
        let movies = s.table_id("movies").unwrap();
        let starring = s.table_id("starring").unwrap();
        let t = g.steiner_tree(&[actor, movies]).unwrap();
        assert!(t.contains(starring));
        assert_eq!(t.join_length(), 2);
        assert!(t.is_connected());
    }

    #[test]
    fn steiner_disconnected_errors() {
        let s = schema();
        let g = JoinGraph::new(&s);
        let actor = s.table_id("actor").unwrap();
        let iso = s.table_id("isolated").unwrap();
        assert!(matches!(g.steiner_tree(&[actor, iso]), Err(DbError::DisconnectedJoin(_))));
    }

    #[test]
    fn extensions_add_one_table() {
        let s = schema();
        let g = JoinGraph::new(&s);
        let actor = s.table_id("actor").unwrap();
        let base = JoinTree::single(actor);
        let exts = g.extensions(&base);
        assert_eq!(exts.len(), 1);
        assert!(exts[0].contains(s.table_id("starring").unwrap()));
        assert_eq!(exts[0].join_length(), 1);
        // Extending once more reaches movies.
        let exts2 = g.extensions(&exts[0]);
        assert!(exts2.iter().any(|t| t.contains(s.table_id("movies").unwrap())));
    }

    #[test]
    fn join_tree_connectivity_detection() {
        let s = schema();
        let actor = s.table_id("actor").unwrap();
        let movies = s.table_id("movies").unwrap();
        let broken = JoinTree::new(vec![actor, movies], vec![]);
        assert!(!broken.is_connected());
    }

    #[test]
    fn join_tree_canonicalization_dedups() {
        let s = schema();
        let g = JoinGraph::new(&s);
        let actor = s.table_id("actor").unwrap();
        let starring = s.table_id("starring").unwrap();
        let e = g.edges_of(actor)[0];
        let t = JoinTree::new(vec![starring, actor, actor], vec![e, e]);
        assert_eq!(t.tables.len(), 2);
        assert_eq!(t.edges.len(), 1);
    }
}
