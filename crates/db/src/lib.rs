//! # duoquest-db
//!
//! An in-memory relational engine that serves as the database substrate for the
//! [Duoquest](https://arxiv.org/abs/2003.07438) reproduction.
//!
//! The crate provides:
//!
//! * typed values and columns ([`Value`], [`DataType`]),
//! * schemas with explicit foreign-key → primary-key relationships ([`Schema`]),
//! * row storage and a loaded [`Database`],
//! * an inverted column index used by the autocomplete interface ([`InvertedIndex`]),
//! * ordered secondary indexes backing index-nested-loop joins, range scans
//!   and ordered index scans ([`TableIndex`]),
//! * a schema join graph with Steiner-tree computation ([`JoinGraph`], [`JoinTree`]),
//! * an executable select-project-join-aggregate query specification ([`SelectSpec`])
//!   together with an executor ([`execute`]).
//!
//! Higher layers (the SQL AST, the GPQE enumerator, the verifier) compile their
//! queries down to [`SelectSpec`] and run them here, exactly as the paper's
//! prototype compiled candidate queries and verification probes down to SQL
//! executed on PostgreSQL.

#![warn(missing_docs)]

pub mod cache;
pub mod database;
pub mod error;
pub mod executor;
pub mod index;
pub mod join_graph;
pub mod query;
pub mod schema;
pub mod table_index;
pub mod types;

pub use cache::{
    CacheStats, CachedProbe, InflightJoin, InflightKey, InflightTable, LeaderGuard, ProbeCache,
    RunCacheCounters,
};
pub use database::{Database, Row, TableData};
pub use error::DbError;
pub use executor::{execute, execute_with, ExecMetrics, ExecOptions, ExecOutcome, ResultSet};
pub use index::{IndexHit, InvertedIndex};
pub use join_graph::{JoinEdge, JoinGraph, JoinTree};
pub use query::{
    AggFunc, CmpOp, LogicalOp, OrderKey, OrderSpec, Predicate, SelectItem, SelectSpec,
};
pub use schema::{ColumnDef, ColumnId, ForeignKey, Schema, TableDef, TableId};
pub use table_index::{ColumnIndex, IndexStats, TableIndex};
pub use types::{DataType, Value};
