//! Fluent, by-name query builder.
//!
//! Workloads and tests construct gold queries with this builder; the join path
//! is derived automatically with the same Steiner-tree construction used by
//! progressive join path construction, plus any explicitly forced tables.

use crate::error::{SqlError, SqlResult};
use duoquest_db::{
    AggFunc, CmpOp, JoinGraph, LogicalOp, OrderKey, OrderSpec, Predicate, Schema, SelectItem,
    SelectSpec, TableId, Value,
};

/// Builder for [`SelectSpec`] using `table.column` names.
pub struct QueryBuilder<'a> {
    schema: &'a Schema,
    spec: SelectSpec,
    extra_tables: Vec<TableId>,
    error: Option<SqlError>,
}

impl<'a> QueryBuilder<'a> {
    /// Start building a query against a schema.
    pub fn new(schema: &'a Schema) -> Self {
        QueryBuilder { schema, spec: SelectSpec::default(), extra_tables: Vec::new(), error: None }
    }

    fn record_err(&mut self, e: SqlError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    fn resolve(&mut self, qualified: &str) -> Option<duoquest_db::ColumnId> {
        match parse_qualified(self.schema, qualified) {
            Ok(c) => Some(c),
            Err(e) => {
                self.record_err(e);
                None
            }
        }
    }

    /// Project a plain column, e.g. `.select("actor.name")`.
    pub fn select(mut self, qualified: &str) -> Self {
        if let Some(c) = self.resolve(qualified) {
            self.spec.select.push(SelectItem::column(c));
        }
        self
    }

    /// Project an aggregated column, e.g. `.select_agg(AggFunc::Max, "movies.year")`.
    pub fn select_agg(mut self, agg: AggFunc, qualified: &str) -> Self {
        if let Some(c) = self.resolve(qualified) {
            self.spec.select.push(SelectItem::aggregate(agg, c));
        }
        self
    }

    /// Project `COUNT(*)`.
    pub fn select_count_star(mut self) -> Self {
        self.spec.select.push(SelectItem::count_star());
        self
    }

    /// Remove duplicate output rows.
    pub fn distinct(mut self) -> Self {
        self.spec.distinct = true;
        self
    }

    /// Force an additional table into the FROM clause (e.g. a bridge table whose
    /// columns are not referenced elsewhere).
    pub fn with_table(mut self, table: &str) -> Self {
        match self.schema.table_id(table) {
            Ok(t) => self.extra_tables.push(t),
            Err(e) => self.record_err(e.into()),
        }
        self
    }

    /// Add a WHERE predicate.
    pub fn filter(mut self, qualified: &str, op: CmpOp, value: impl Into<Value>) -> Self {
        if let Some(c) = self.resolve(qualified) {
            self.spec.predicates.push(Predicate::new(c, op, value.into()));
        }
        self
    }

    /// Add a BETWEEN predicate.
    pub fn filter_between(
        mut self,
        qualified: &str,
        lo: impl Into<Value>,
        hi: impl Into<Value>,
    ) -> Self {
        if let Some(c) = self.resolve(qualified) {
            self.spec.predicates.push(Predicate::between(c, lo.into(), hi.into()));
        }
        self
    }

    /// Combine the WHERE predicates with OR instead of AND.
    pub fn or_predicates(mut self) -> Self {
        self.spec.predicate_op = LogicalOp::Or;
        self
    }

    /// Add a GROUP BY column.
    pub fn group_by(mut self, qualified: &str) -> Self {
        if let Some(c) = self.resolve(qualified) {
            self.spec.group_by.push(c);
        }
        self
    }

    /// Add a HAVING predicate over an aggregate of a column (or `None` for `*`).
    pub fn having(
        mut self,
        agg: AggFunc,
        qualified: Option<&str>,
        op: CmpOp,
        value: impl Into<Value>,
    ) -> Self {
        let col = match qualified {
            Some(q) => match self.resolve(q) {
                Some(c) => Some(c),
                None => return self,
            },
            None => None,
        };
        self.spec.having.push(Predicate::having(agg, col, op, value.into()));
        self
    }

    /// Order by a plain column.
    pub fn order_by(mut self, qualified: &str, desc: bool) -> Self {
        if let Some(c) = self.resolve(qualified) {
            self.spec.order_by = Some(OrderSpec { key: OrderKey::Column(c), desc });
        }
        self
    }

    /// Order by an aggregate (`None` column = `COUNT(*)` style).
    pub fn order_by_agg(mut self, agg: AggFunc, qualified: Option<&str>, desc: bool) -> Self {
        let col = match qualified {
            Some(q) => match self.resolve(q) {
                Some(c) => Some(c),
                None => return self,
            },
            None => None,
        };
        self.spec.order_by = Some(OrderSpec { key: OrderKey::Aggregate(agg, col), desc });
        self
    }

    /// Limit the number of output rows.
    pub fn limit(mut self, n: usize) -> Self {
        self.spec.limit = Some(n);
        self
    }

    /// Finalize: derive the join tree from every referenced table (plus forced
    /// tables) via the schema Steiner tree and validate the result.
    pub fn build(mut self) -> SqlResult<SelectSpec> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        if self.spec.select.is_empty() {
            return Err(SqlError::Incomplete("SELECT clause is empty".into()));
        }
        let mut terminals: Vec<TableId> =
            self.spec.referenced_columns().iter().map(|c| c.table).collect();
        terminals.extend(self.extra_tables.iter().copied());
        terminals.sort();
        terminals.dedup();
        if terminals.is_empty() {
            return Err(SqlError::Incomplete("no table referenced".into()));
        }
        let graph = JoinGraph::new(self.schema);
        self.spec.join =
            graph.steiner_tree(&terminals).map_err(|e| SqlError::Unsupported(e.to_string()))?;
        Ok(self.spec)
    }
}

/// Resolve a `table.column` name against a schema.
pub fn parse_qualified(schema: &Schema, qualified: &str) -> SqlResult<duoquest_db::ColumnId> {
    let (table, column) = qualified.split_once('.').ok_or_else(|| {
        SqlError::UnknownIdentifier(format!("expected table.column, got `{qualified}`"))
    })?;
    Ok(schema.column_id(table.trim(), column.trim())?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use duoquest_db::{ColumnDef, TableDef};

    fn schema() -> Schema {
        let mut s = Schema::new("movies");
        s.add_table(TableDef::new(
            "actor",
            vec![ColumnDef::number("aid"), ColumnDef::text("name"), ColumnDef::number("birth_yr")],
            Some(0),
        ));
        s.add_table(TableDef::new(
            "movies",
            vec![ColumnDef::number("mid"), ColumnDef::text("name"), ColumnDef::number("year")],
            Some(0),
        ));
        s.add_table(TableDef::new(
            "starring",
            vec![ColumnDef::number("aid"), ColumnDef::number("mid")],
            None,
        ));
        s.add_foreign_key("starring", "aid", "actor", "aid").unwrap();
        s.add_foreign_key("starring", "mid", "movies", "mid").unwrap();
        s
    }

    #[test]
    fn build_simple_query() {
        let s = schema();
        let q = QueryBuilder::new(&s)
            .select("movies.name")
            .filter("movies.year", CmpOp::Lt, 1995)
            .build()
            .unwrap();
        assert_eq!(q.select.len(), 1);
        assert_eq!(q.join.tables.len(), 1);
        assert_eq!(q.predicates.len(), 1);
    }

    #[test]
    fn build_join_query_derives_bridge_table() {
        let s = schema();
        let q = QueryBuilder::new(&s)
            .select("movies.name")
            .select("actor.name")
            .filter("actor.name", CmpOp::Eq, "Tom Hanks")
            .build()
            .unwrap();
        assert_eq!(q.join.tables.len(), 3);
        assert_eq!(q.join.join_length(), 2);
    }

    #[test]
    fn build_group_having_order() {
        let s = schema();
        let q = QueryBuilder::new(&s)
            .select("actor.name")
            .select_count_star()
            .with_table("starring")
            .group_by("actor.name")
            .having(AggFunc::Count, None, CmpOp::Gt, 5)
            .order_by_agg(AggFunc::Count, None, true)
            .limit(10)
            .build()
            .unwrap();
        assert!(q.has_aggregates());
        assert_eq!(q.group_by.len(), 1);
        assert_eq!(q.having.len(), 1);
        assert_eq!(q.limit, Some(10));
        assert!(q.join.contains(s.table_id("starring").unwrap()));
    }

    #[test]
    fn or_predicates_and_between() {
        let s = schema();
        let q = QueryBuilder::new(&s)
            .select("movies.name")
            .filter("movies.year", CmpOp::Lt, 1995)
            .filter("movies.year", CmpOp::Gt, 2000)
            .or_predicates()
            .build()
            .unwrap();
        assert_eq!(q.predicate_op, LogicalOp::Or);
        let q = QueryBuilder::new(&s)
            .select("movies.name")
            .filter_between("movies.year", 2010, 2017)
            .build()
            .unwrap();
        assert_eq!(q.predicates[0].op, CmpOp::Between);
    }

    #[test]
    fn unknown_identifier_reported() {
        let s = schema();
        let err = QueryBuilder::new(&s).select("movies.title").build();
        assert!(matches!(err, Err(SqlError::UnknownIdentifier(_))));
        let err = QueryBuilder::new(&s).select("name").build();
        assert!(matches!(err, Err(SqlError::UnknownIdentifier(_))));
    }

    #[test]
    fn empty_select_rejected() {
        let s = schema();
        assert!(matches!(QueryBuilder::new(&s).build(), Err(SqlError::Incomplete(_))));
    }
}
