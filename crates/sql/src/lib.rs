//! # duoquest-sql
//!
//! SQL query model for the Duoquest reproduction.
//!
//! Complete queries are represented by [`duoquest_db::SelectSpec`] (the
//! executable form). This crate adds everything the synthesis layers need on
//! top of that:
//!
//! * [`partial`] — **partial queries** (paper Definition 3.1): queries in which
//!   query elements may be replaced by placeholders, the unit of enumeration in
//!   GPQE;
//! * [`builder`] — a by-name query builder used by workloads and tests;
//! * [`parser`] — a recursive-descent parser for the supported SPJA subset so
//!   gold queries can be written as SQL text (as in the paper's appendix);
//! * [`display`] — SQL rendering of complete and partial queries;
//! * [`canon`] — canonical (set-semantics) query equivalence used to score
//!   top-k accuracy in the evaluation.

pub mod builder;
pub mod canon;
pub mod display;
pub mod error;
pub mod parser;
pub mod partial;
pub mod slot;

pub use builder::QueryBuilder;
pub use canon::queries_equivalent;
pub use display::{render_partial, render_sql};
pub use error::SqlError;
pub use parser::parse_query;
pub use partial::{
    ClauseSet, PartialHaving, PartialOrder, PartialPredicate, PartialQuery, PartialSelectItem,
    SelectColumn,
};
pub use slot::Slot;
