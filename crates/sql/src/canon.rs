//! Canonical query equivalence.
//!
//! The simulation study scores a candidate as correct when it matches the gold
//! SQL. Like the Spider benchmark's "exact set matching", the comparison is
//! insensitive to the order of projections, predicates and grouping columns,
//! and to the textual case of literal values. The FROM clause is compared by
//! the *set of tables* joined (join conditions are implied by the FK-PK-only
//! join scope of the paper).

use duoquest_db::{LogicalOp, Predicate, SelectSpec, Value};

/// Whether two queries are equivalent under canonical (set-semantics) comparison.
pub fn queries_equivalent(a: &SelectSpec, b: &SelectSpec) -> bool {
    select_equiv(a, b)
        && tables_equiv(a, b)
        && predicates_equiv(a, b)
        && group_equiv(a, b)
        && having_equiv(a, b)
        && order_equiv(a, b)
        && a.limit == b.limit
}

fn select_equiv(a: &SelectSpec, b: &SelectSpec) -> bool {
    if a.select.len() != b.select.len() {
        return false;
    }
    let mut a_items: Vec<String> =
        a.select.iter().map(|i| format!("{:?}|{:?}", i.agg, i.col)).collect();
    let mut b_items: Vec<String> =
        b.select.iter().map(|i| format!("{:?}|{:?}", i.agg, i.col)).collect();
    a_items.sort();
    b_items.sort();
    a_items == b_items
}

fn tables_equiv(a: &SelectSpec, b: &SelectSpec) -> bool {
    let mut ta = a.join.tables.clone();
    let mut tb = b.join.tables.clone();
    ta.sort();
    tb.sort();
    ta == tb
}

fn value_key(v: &Value) -> String {
    match v {
        Value::Text(s) => format!("t:{}", s.to_ascii_lowercase()),
        Value::Number(n) => format!("n:{n}"),
        Value::Null => "null".into(),
    }
}

fn predicate_key(p: &Predicate) -> String {
    format!(
        "{:?}|{:?}|{:?}|{}|{}",
        p.agg,
        p.col,
        p.op,
        value_key(&p.value),
        p.value2.as_ref().map(value_key).unwrap_or_default()
    )
}

fn predicates_equiv(a: &SelectSpec, b: &SelectSpec) -> bool {
    if a.predicates.len() != b.predicates.len() {
        return false;
    }
    // The connective only matters when there is more than one predicate.
    if a.predicates.len() > 1 {
        let op_a = a.predicate_op;
        let op_b = b.predicate_op;
        if !matches!(
            (op_a, op_b),
            (LogicalOp::And, LogicalOp::And) | (LogicalOp::Or, LogicalOp::Or)
        ) {
            return false;
        }
    }
    let mut ka: Vec<String> = a.predicates.iter().map(predicate_key).collect();
    let mut kb: Vec<String> = b.predicates.iter().map(predicate_key).collect();
    ka.sort();
    kb.sort();
    ka == kb
}

fn group_equiv(a: &SelectSpec, b: &SelectSpec) -> bool {
    let mut ga = a.group_by.clone();
    let mut gb = b.group_by.clone();
    ga.sort();
    gb.sort();
    ga == gb
}

fn having_equiv(a: &SelectSpec, b: &SelectSpec) -> bool {
    let mut ha: Vec<String> = a.having.iter().map(predicate_key).collect();
    let mut hb: Vec<String> = b.having.iter().map(predicate_key).collect();
    ha.sort();
    hb.sort();
    ha == hb
}

fn order_equiv(a: &SelectSpec, b: &SelectSpec) -> bool {
    match (&a.order_by, &b.order_by) {
        (None, None) => true,
        (Some(x), Some(y)) => x.key == y.key && x.desc == y.desc,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duoquest_db::{
        AggFunc, CmpOp, ColumnDef, JoinTree, OrderKey, OrderSpec, Schema, SelectItem, TableDef,
    };

    fn schema() -> Schema {
        let mut s = Schema::new("m");
        s.add_table(TableDef::new(
            "movies",
            vec![ColumnDef::number("mid"), ColumnDef::text("name"), ColumnDef::number("year")],
            Some(0),
        ));
        s
    }

    fn base(s: &Schema) -> SelectSpec {
        SelectSpec {
            select: vec![
                SelectItem::column(s.column_id("movies", "name").unwrap()),
                SelectItem::column(s.column_id("movies", "year").unwrap()),
            ],
            join: JoinTree::single(s.table_id("movies").unwrap()),
            predicates: vec![
                Predicate::new(s.column_id("movies", "year").unwrap(), CmpOp::Lt, Value::int(1995)),
                Predicate::new(
                    s.column_id("movies", "name").unwrap(),
                    CmpOp::Eq,
                    Value::text("Gravity"),
                ),
            ],
            predicate_op: LogicalOp::And,
            ..Default::default()
        }
    }

    #[test]
    fn identical_queries_match() {
        let s = schema();
        assert!(queries_equivalent(&base(&s), &base(&s)));
    }

    #[test]
    fn projection_and_predicate_order_is_ignored() {
        let s = schema();
        let a = base(&s);
        let mut b = base(&s);
        b.select.reverse();
        b.predicates.reverse();
        assert!(queries_equivalent(&a, &b));
    }

    #[test]
    fn literal_case_is_ignored() {
        let s = schema();
        let a = base(&s);
        let mut b = base(&s);
        b.predicates[1].value = Value::text("gravity");
        assert!(queries_equivalent(&a, &b));
    }

    #[test]
    fn differing_operator_or_value_detected() {
        let s = schema();
        let a = base(&s);
        let mut b = base(&s);
        b.predicates[0].op = CmpOp::Le;
        assert!(!queries_equivalent(&a, &b));
        let mut c = base(&s);
        c.predicates[0].value = Value::int(2000);
        assert!(!queries_equivalent(&a, &c));
    }

    #[test]
    fn connective_matters_with_multiple_predicates() {
        let s = schema();
        let a = base(&s);
        let mut b = base(&s);
        b.predicate_op = LogicalOp::Or;
        assert!(!queries_equivalent(&a, &b));
    }

    #[test]
    fn order_and_limit_matter() {
        let s = schema();
        let a = base(&s);
        let mut b = base(&s);
        b.order_by = Some(OrderSpec {
            key: OrderKey::Column(s.column_id("movies", "year").unwrap()),
            desc: false,
        });
        assert!(!queries_equivalent(&a, &b));
        let mut c = base(&s);
        c.limit = Some(5);
        assert!(!queries_equivalent(&a, &c));
    }

    #[test]
    fn aggregates_in_select_compared() {
        let s = schema();
        let mut a = base(&s);
        a.select = vec![SelectItem::count_star()];
        let mut b = base(&s);
        b.select =
            vec![SelectItem::aggregate(AggFunc::Count, s.column_id("movies", "name").unwrap())];
        assert!(!queries_equivalent(&a, &b));
    }
}
