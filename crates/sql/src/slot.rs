//! [`Slot`]: a query element that is either filled or a placeholder.
//!
//! Partial queries (paper Definition 3.1) replace query elements — clauses,
//! expressions, column references, aggregate functions, constants — with
//! placeholders. `Slot<T>` is the generic building block for that.

use serde::{Deserialize, Serialize};

/// A query element that may still be a placeholder (`Hole`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Slot<T> {
    /// The element has not been decided yet (rendered as `?`).
    #[default]
    Hole,
    /// The element has been filled with a concrete value.
    Filled(T),
}

impl<T> Slot<T> {
    /// Whether the slot is filled.
    pub fn is_filled(&self) -> bool {
        matches!(self, Slot::Filled(_))
    }

    /// Whether the slot is still a hole.
    pub fn is_hole(&self) -> bool {
        matches!(self, Slot::Hole)
    }

    /// Reference to the filled value, if any.
    pub fn as_ref(&self) -> Option<&T> {
        match self {
            Slot::Filled(v) => Some(v),
            Slot::Hole => None,
        }
    }

    /// Consume the slot, returning the filled value, if any.
    pub fn into_option(self) -> Option<T> {
        match self {
            Slot::Filled(v) => Some(v),
            Slot::Hole => None,
        }
    }

    /// Map the filled value.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Slot<U> {
        match self {
            Slot::Filled(v) => Slot::Filled(f(v)),
            Slot::Hole => Slot::Hole,
        }
    }
}

impl<T> From<T> for Slot<T> {
    fn from(v: T) -> Self {
        Slot::Filled(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_hole() {
        let s: Slot<u32> = Slot::default();
        assert!(s.is_hole());
        assert!(!s.is_filled());
        assert_eq!(s.as_ref(), None);
    }

    #[test]
    fn filled_accessors() {
        let s = Slot::Filled(7);
        assert!(s.is_filled());
        assert_eq!(s.as_ref(), Some(&7));
        assert_eq!(s.into_option(), Some(7));
    }

    #[test]
    fn map_and_from() {
        let s: Slot<u32> = 3.into();
        assert_eq!(s.map(|v| v * 2), Slot::Filled(6));
        let h: Slot<u32> = Slot::Hole;
        assert_eq!(h.map(|v| v * 2), Slot::Hole);
    }
}
