//! SQL rendering of complete and partial queries.
//!
//! The candidate list shown to Duoquest users displays each candidate as SQL
//! text; partial queries are rendered with `?` placeholders exactly like the
//! paper's Figure 2.

use crate::partial::{PartialQuery, SelectColumn};
use crate::slot::Slot;
use duoquest_db::{
    CmpOp, JoinTree, LogicalOp, OrderKey, Predicate, Schema, SelectItem, SelectSpec,
};

/// Render a complete query as SQL text.
pub fn render_sql(spec: &SelectSpec, schema: &Schema) -> String {
    let mut out = String::from("SELECT ");
    if spec.distinct {
        out.push_str("DISTINCT ");
    }
    let items: Vec<String> = spec.select.iter().map(|i| render_item(i, schema)).collect();
    out.push_str(&items.join(", "));
    out.push_str(" FROM ");
    out.push_str(&render_join(&spec.join, schema));
    if !spec.predicates.is_empty() {
        out.push_str(" WHERE ");
        let preds: Vec<String> =
            spec.predicates.iter().map(|p| render_predicate(p, schema)).collect();
        out.push_str(&preds.join(&format!(" {} ", render_logical(spec.predicate_op))));
    }
    if !spec.group_by.is_empty() {
        out.push_str(" GROUP BY ");
        let cols: Vec<String> = spec.group_by.iter().map(|c| schema.qualified_name(*c)).collect();
        out.push_str(&cols.join(", "));
    }
    if !spec.having.is_empty() {
        out.push_str(" HAVING ");
        let preds: Vec<String> = spec.having.iter().map(|p| render_predicate(p, schema)).collect();
        out.push_str(&preds.join(" AND "));
    }
    if let Some(order) = &spec.order_by {
        out.push_str(" ORDER BY ");
        out.push_str(&render_order_key(&order.key, schema));
        out.push_str(if order.desc { " DESC" } else { " ASC" });
    }
    if let Some(limit) = spec.limit {
        out.push_str(&format!(" LIMIT {limit}"));
    }
    out
}

/// Render a partial query as SQL text with `?` placeholders.
pub fn render_partial(pq: &PartialQuery, schema: &Schema) -> String {
    let mut out = String::from("SELECT ");
    if pq.distinct {
        out.push_str("DISTINCT ");
    }
    match &pq.select {
        Slot::Hole => out.push('?'),
        Slot::Filled(items) => {
            let rendered: Vec<String> = items
                .iter()
                .map(|it| {
                    let col = match it.col.as_ref() {
                        None => "?".to_string(),
                        Some(SelectColumn::Star) => "*".to_string(),
                        Some(SelectColumn::Column(c)) => schema.qualified_name(*c),
                    };
                    match it.agg.as_ref() {
                        None => format!("?({col})"),
                        Some(None) => col,
                        Some(Some(agg)) => format!("{agg}({col})"),
                    }
                })
                .collect();
            out.push_str(&rendered.join(", "));
        }
    }
    out.push_str(" FROM ");
    match &pq.join {
        None => out.push('?'),
        Some(join) => out.push_str(&render_join(join, schema)),
    }
    let clauses = pq.clauses.as_ref();
    if clauses.map(|c| c.where_clause).unwrap_or(false) {
        out.push_str(" WHERE ");
        match &pq.where_predicates {
            Slot::Hole => out.push('?'),
            Slot::Filled(preds) => {
                let conj = match pq.where_op.as_ref() {
                    Some(op) => render_logical(*op).to_string(),
                    None => "?".to_string(),
                };
                let rendered: Vec<String> = preds
                    .iter()
                    .map(|p| {
                        let col = p
                            .col
                            .as_ref()
                            .map(|c| schema.qualified_name(*c))
                            .unwrap_or_else(|| "?".into());
                        let op = p.op.as_ref().map(|o| o.to_string()).unwrap_or_else(|| "?".into());
                        let value =
                            p.value.as_ref().map(|v| v.to_string()).unwrap_or_else(|| "?".into());
                        if p.op.as_ref() == Some(&CmpOp::Between) {
                            let hi = p
                                .value2
                                .as_ref()
                                .map(|v| v.to_string())
                                .unwrap_or_else(|| "?".into());
                            format!("{col} BETWEEN {value} AND {hi}")
                        } else {
                            format!("{col} {op} {value}")
                        }
                    })
                    .collect();
                out.push_str(&rendered.join(&format!(" {conj} ")));
            }
        }
    } else if clauses.is_none() {
        out.push_str(" ?");
    }
    if clauses.map(|c| c.group_by).unwrap_or(false) {
        out.push_str(" GROUP BY ");
        match &pq.group_by {
            Slot::Hole => out.push('?'),
            Slot::Filled(cols) => {
                let rendered: Vec<String> =
                    cols.iter().map(|c| schema.qualified_name(*c)).collect();
                out.push_str(&rendered.join(", "));
            }
        }
        if let Some(Some(h)) = pq.having.as_ref() {
            let agg = h.agg.as_ref().map(|a| a.to_string()).unwrap_or_else(|| "?".into());
            let col = match h.col.as_ref() {
                None => "?".to_string(),
                Some(None) => "*".to_string(),
                Some(Some(c)) => schema.qualified_name(*c),
            };
            let op = h.op.as_ref().map(|o| o.to_string()).unwrap_or_else(|| "?".into());
            let value = h.value.as_ref().map(|v| v.to_string()).unwrap_or_else(|| "?".into());
            out.push_str(&format!(" HAVING {agg}({col}) {op} {value}"));
        }
    }
    if clauses.map(|c| c.order_by).unwrap_or(false) {
        out.push_str(" ORDER BY ");
        match pq.order_by.as_ref() {
            None | Some(None) => out.push('?'),
            Some(Some(o)) => {
                match o.key.as_ref() {
                    None => out.push('?'),
                    Some(k) => out.push_str(&render_order_key(k, schema)),
                }
                match o.desc.as_ref() {
                    None => out.push_str(" ?"),
                    Some(true) => out.push_str(" DESC"),
                    Some(false) => out.push_str(" ASC"),
                }
                if let Some(Some(limit)) = o.limit.as_ref() {
                    out.push_str(&format!(" LIMIT {limit}"));
                }
            }
        }
    }
    out
}

fn render_item(item: &SelectItem, schema: &Schema) -> String {
    match (item.agg, item.col) {
        (Some(agg), Some(c)) => format!("{agg}({})", schema.qualified_name(c)),
        (Some(agg), None) => format!("{agg}(*)"),
        (None, Some(c)) => schema.qualified_name(c),
        (None, None) => "?".to_string(),
    }
}

fn render_predicate(p: &Predicate, schema: &Schema) -> String {
    let lhs = match (p.agg, p.col) {
        (Some(agg), Some(c)) => format!("{agg}({})", schema.qualified_name(c)),
        (Some(agg), None) => format!("{agg}(*)"),
        (None, Some(c)) => schema.qualified_name(c),
        (None, None) => "?".to_string(),
    };
    if p.op == CmpOp::Between {
        let hi = p.value2.as_ref().map(|v| v.to_string()).unwrap_or_else(|| "?".into());
        format!("{lhs} BETWEEN {} AND {hi}", p.value)
    } else {
        format!("{lhs} {} {}", p.op, p.value)
    }
}

fn render_order_key(key: &OrderKey, schema: &Schema) -> String {
    match key {
        OrderKey::Column(c) => schema.qualified_name(*c),
        OrderKey::Aggregate(agg, Some(c)) => format!("{agg}({})", schema.qualified_name(*c)),
        OrderKey::Aggregate(agg, None) => format!("{agg}(*)"),
    }
}

fn render_logical(op: LogicalOp) -> &'static str {
    match op {
        LogicalOp::And => "AND",
        LogicalOp::Or => "OR",
    }
}

/// Render the FROM clause of a join tree deterministically (smallest table id
/// first, joins added in edge order).
fn render_join(join: &JoinTree, schema: &Schema) -> String {
    if join.tables.is_empty() {
        return "?".to_string();
    }
    let mut out = schema.table(join.tables[0]).name.clone();
    let mut joined = vec![join.tables[0]];
    let mut remaining = join.edges.clone();
    while joined.len() < join.tables.len() && !remaining.is_empty() {
        let Some(pos) = remaining.iter().position(|e| {
            let (a, b) = e.tables();
            joined.contains(&a) != joined.contains(&b)
        }) else {
            break;
        };
        let edge = remaining.remove(pos);
        let (a, b) = edge.tables();
        let new_table = if joined.contains(&a) { b } else { a };
        out.push_str(&format!(
            " JOIN {} ON {} = {}",
            schema.table(new_table).name,
            schema.qualified_name(edge.fk.from),
            schema.qualified_name(edge.fk.to)
        ));
        joined.push(new_table);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partial::{ClauseSet, PartialPredicate, PartialSelectItem};
    use duoquest_db::{ColumnDef, JoinGraph, Schema, TableDef, Value};

    fn schema() -> Schema {
        let mut s = Schema::new("movies");
        s.add_table(TableDef::new(
            "actor",
            vec![ColumnDef::number("aid"), ColumnDef::text("name")],
            Some(0),
        ));
        s.add_table(TableDef::new(
            "movies",
            vec![ColumnDef::number("mid"), ColumnDef::text("name"), ColumnDef::number("year")],
            Some(0),
        ));
        s.add_table(TableDef::new(
            "starring",
            vec![ColumnDef::number("aid"), ColumnDef::number("mid")],
            None,
        ));
        s.add_foreign_key("starring", "aid", "actor", "aid").unwrap();
        s.add_foreign_key("starring", "mid", "movies", "mid").unwrap();
        s
    }

    #[test]
    fn render_complete_query() {
        let s = schema();
        let g = JoinGraph::new(&s);
        let join =
            g.steiner_tree(&[s.table_id("actor").unwrap(), s.table_id("movies").unwrap()]).unwrap();
        let spec = SelectSpec {
            select: vec![
                SelectItem::column(s.column_id("movies", "name").unwrap()),
                SelectItem::column(s.column_id("actor", "name").unwrap()),
            ],
            join,
            predicates: vec![Predicate::new(
                s.column_id("movies", "year").unwrap(),
                CmpOp::Lt,
                Value::int(1995),
            )],
            order_by: Some(duoquest_db::OrderSpec {
                key: OrderKey::Column(s.column_id("movies", "year").unwrap()),
                desc: false,
            }),
            ..Default::default()
        };
        let sql = render_sql(&spec, &s);
        assert!(sql.starts_with("SELECT movies.name, actor.name FROM "));
        assert!(sql.contains("JOIN"));
        assert!(sql.contains("WHERE movies.year < 1995"));
        assert!(sql.contains("ORDER BY movies.year ASC"));
    }

    #[test]
    fn render_partial_with_holes() {
        let s = schema();
        let mut pq = PartialQuery::empty();
        let rendered = render_partial(&pq, &s);
        assert!(rendered.contains("SELECT ?"));
        assert!(rendered.contains("FROM ?"));

        pq.clauses = Slot::Filled(ClauseSet { where_clause: true, ..Default::default() });
        pq.select = Slot::Filled(vec![PartialSelectItem::with_column(SelectColumn::Column(
            s.column_id("movies", "name").unwrap(),
        ))]);
        pq.join = Some(JoinTree::single(s.table_id("movies").unwrap()));
        pq.where_predicates = Slot::Filled(vec![PartialPredicate::with_column(
            s.column_id("movies", "year").unwrap(),
        )]);
        let rendered = render_partial(&pq, &s);
        assert!(rendered.contains("?(movies.name)"));
        assert!(rendered.contains("WHERE movies.year ? ?"));
    }

    #[test]
    fn render_between_and_having() {
        let s = schema();
        let spec = SelectSpec {
            select: vec![SelectItem::column(s.column_id("movies", "name").unwrap())],
            join: JoinTree::single(s.table_id("movies").unwrap()),
            predicates: vec![Predicate::between(
                s.column_id("movies", "year").unwrap(),
                Value::int(2010),
                Value::int(2017),
            )],
            group_by: vec![s.column_id("movies", "name").unwrap()],
            having: vec![Predicate::having(
                duoquest_db::AggFunc::Count,
                None,
                CmpOp::Gt,
                Value::int(5),
            )],
            ..Default::default()
        };
        let sql = render_sql(&spec, &s);
        assert!(sql.contains("BETWEEN 2010 AND 2017"));
        assert!(sql.contains("HAVING COUNT(*) > 5"));
        assert!(sql.contains("GROUP BY movies.name"));
    }
}
