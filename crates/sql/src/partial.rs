//! Partial queries: the unit of enumeration in GPQE.
//!
//! Paper Definition 3.1: *"A partial query (PQ) is a SQL query in which a query
//! element (i.e. SQL query, clause, expression, column reference, aggregate
//! function, or constant) may be replaced by a placeholder."*
//!
//! [`PartialQuery`] mirrors the decision structure of the SyntaxSQLNet-style
//! guidance modules (paper Table 3): the clause set (KW), the projected columns
//! (COL), per-projection aggregates (AGG), selection predicates (COL + OP +
//! constants), the predicate connective (AND/OR), grouping, HAVING, and the
//! ORDER BY direction plus LIMIT (DESC/ASC). The join path is attached
//! separately by progressive join path construction.

use crate::error::{SqlError, SqlResult};
use crate::slot::Slot;
use duoquest_db::{
    AggFunc, CmpOp, ColumnId, DataType, JoinTree, LogicalOp, OrderKey, OrderSpec, Predicate,
    Schema, SelectItem, SelectSpec, Value,
};

/// Which optional clauses are present in the query (the KW module's output).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ClauseSet {
    /// `WHERE` clause present.
    pub where_clause: bool,
    /// `GROUP BY` clause present.
    pub group_by: bool,
    /// `ORDER BY` clause present.
    pub order_by: bool,
}

impl ClauseSet {
    /// All eight possible clause combinations, simplest first.
    pub fn all() -> Vec<ClauseSet> {
        let mut out = Vec::with_capacity(8);
        for bits in 0..8u8 {
            out.push(ClauseSet {
                where_clause: bits & 1 != 0,
                group_by: bits & 2 != 0,
                order_by: bits & 4 != 0,
            });
        }
        out
    }

    /// Number of optional clauses present.
    pub fn count(&self) -> usize {
        self.where_clause as usize + self.group_by as usize + self.order_by as usize
    }
}

/// A projected column: either a concrete column or `*` (only under `COUNT`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelectColumn {
    /// `*`, only valid when aggregated with `COUNT`.
    Star,
    /// A concrete schema column.
    Column(ColumnId),
}

/// One projected item of a partial query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PartialSelectItem {
    /// The projected column (COL module decision).
    pub col: Slot<SelectColumn>,
    /// The aggregate applied to it, `None` for a bare column (AGG module decision).
    pub agg: Slot<Option<AggFunc>>,
}

impl PartialSelectItem {
    /// A fresh item with the column decided and the aggregate still open.
    pub fn with_column(col: SelectColumn) -> Self {
        PartialSelectItem { col: Slot::Filled(col), agg: Slot::Hole }
    }

    /// Whether both decisions have been made.
    pub fn is_complete(&self) -> bool {
        self.col.is_filled() && self.agg.is_filled()
    }

    /// Output type of the item against a schema, if decidable from the filled parts.
    pub fn output_type(&self, schema: &Schema) -> Option<DataType> {
        match (self.agg.as_ref(), self.col.as_ref()) {
            (Some(Some(agg)), Some(SelectColumn::Column(c))) => {
                Some(agg.result_type(Some(schema.column(*c).dtype)))
            }
            (Some(Some(agg)), Some(SelectColumn::Star)) => Some(agg.result_type(None)),
            (Some(None), Some(SelectColumn::Column(c))) => Some(schema.column(*c).dtype),
            // An undecided aggregate over a numeric column is still numeric;
            // over a text column the type depends on the aggregate choice.
            (None, Some(SelectColumn::Column(c))) => {
                let dt = schema.column(*c).dtype;
                if dt == DataType::Number {
                    Some(DataType::Number)
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

/// One selection predicate of a partial query (`WHERE` position).
#[derive(Debug, Clone, PartialEq)]
pub struct PartialPredicate {
    /// Compared column.
    pub col: Slot<ColumnId>,
    /// Comparison operator (OP module decision).
    pub op: Slot<CmpOp>,
    /// Right-hand constant, bound from the NLQ's tagged literals.
    pub value: Slot<Value>,
    /// Upper bound for `BETWEEN`.
    pub value2: Option<Value>,
}

impl PartialPredicate {
    /// A predicate with only the column decided.
    pub fn with_column(col: ColumnId) -> Self {
        PartialPredicate { col: Slot::Filled(col), op: Slot::Hole, value: Slot::Hole, value2: None }
    }

    /// Whether all parts are decided.
    pub fn is_complete(&self) -> bool {
        self.col.is_filled() && self.op.is_filled() && self.value.is_filled()
    }

    /// Lower to an executable predicate (requires completeness).
    pub fn to_predicate(&self) -> SqlResult<Predicate> {
        let col =
            *self.col.as_ref().ok_or_else(|| SqlError::Incomplete("predicate column".into()))?;
        let op =
            *self.op.as_ref().ok_or_else(|| SqlError::Incomplete("predicate operator".into()))?;
        let value = self
            .value
            .as_ref()
            .ok_or_else(|| SqlError::Incomplete("predicate value".into()))?
            .clone();
        Ok(Predicate { agg: None, col: Some(col), op, value, value2: self.value2.clone() })
    }
}

/// A HAVING predicate of a partial query (always aggregated).
#[derive(Debug, Clone, PartialEq)]
pub struct PartialHaving {
    /// Aggregate function.
    pub agg: Slot<AggFunc>,
    /// Aggregated column; `None` means `COUNT(*)`.
    pub col: Slot<Option<ColumnId>>,
    /// Comparison operator.
    pub op: Slot<CmpOp>,
    /// Right-hand constant.
    pub value: Slot<Value>,
}

impl PartialHaving {
    /// Whether all parts are decided.
    pub fn is_complete(&self) -> bool {
        self.agg.is_filled()
            && self.col.is_filled()
            && self.op.is_filled()
            && self.value.is_filled()
    }

    /// Lower to an executable HAVING predicate.
    pub fn to_predicate(&self) -> SqlResult<Predicate> {
        Ok(Predicate {
            agg: Some(*self.agg.as_ref().ok_or_else(|| SqlError::Incomplete("having agg".into()))?),
            col: *self.col.as_ref().ok_or_else(|| SqlError::Incomplete("having column".into()))?,
            op: *self.op.as_ref().ok_or_else(|| SqlError::Incomplete("having op".into()))?,
            value: self
                .value
                .as_ref()
                .ok_or_else(|| SqlError::Incomplete("having value".into()))?
                .clone(),
            value2: None,
        })
    }
}

/// ORDER BY direction, key and LIMIT (the DESC/ASC+LIMIT module decision).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartialOrder {
    /// Sort key.
    pub key: Slot<OrderKey>,
    /// Direction: descending if true.
    pub desc: Slot<bool>,
    /// Optional LIMIT (None = no limit).
    pub limit: Slot<Option<usize>>,
}

impl PartialOrder {
    /// Whether all parts are decided.
    pub fn is_complete(&self) -> bool {
        self.key.is_filled() && self.desc.is_filled() && self.limit.is_filled()
    }
}

/// A partial SPJA query: every clause may still contain placeholders.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PartialQuery {
    /// Which optional clauses are present (KW module decision).
    pub clauses: Slot<ClauseSet>,
    /// Projected items; the outer slot is a hole until the COL module decides
    /// the projection list.
    pub select: Slot<Vec<PartialSelectItem>>,
    /// Whether duplicates are removed.
    pub distinct: bool,
    /// The join path, attached by progressive join path construction.
    pub join: Option<JoinTree>,
    /// WHERE predicates; hole until the predicate column list is decided.
    pub where_predicates: Slot<Vec<PartialPredicate>>,
    /// Connective between WHERE predicates (AND/OR module decision).
    pub where_op: Slot<LogicalOp>,
    /// GROUP BY columns.
    pub group_by: Slot<Vec<ColumnId>>,
    /// Optional HAVING predicate (HAVING module decision).
    pub having: Slot<Option<PartialHaving>>,
    /// Optional ORDER BY specification.
    pub order_by: Slot<Option<PartialOrder>>,
}

impl PartialQuery {
    /// The completely empty partial query (the root of the search space).
    pub fn empty() -> Self {
        PartialQuery::default()
    }

    /// Whether every decision required by the chosen clause set has been made.
    pub fn is_complete(&self) -> bool {
        let Some(clauses) = self.clauses.as_ref() else { return false };
        let Some(select) = self.select.as_ref() else { return false };
        if select.is_empty() || !select.iter().all(PartialSelectItem::is_complete) {
            return false;
        }
        if self.join.is_none() {
            return false;
        }
        if clauses.where_clause {
            let Some(preds) = self.where_predicates.as_ref() else { return false };
            if preds.is_empty() || !preds.iter().all(PartialPredicate::is_complete) {
                return false;
            }
            if preds.len() > 1 && !self.where_op.is_filled() {
                return false;
            }
        }
        if clauses.group_by {
            let Some(group) = self.group_by.as_ref() else { return false };
            if group.is_empty() {
                return false;
            }
            match self.having.as_ref() {
                None => return false,
                Some(Some(h)) if !h.is_complete() => return false,
                _ => {}
            }
        }
        if clauses.order_by {
            match self.order_by.as_ref() {
                None | Some(None) => return false,
                Some(Some(o)) if !o.is_complete() => return false,
                _ => {}
            }
        }
        true
    }

    /// Filled projected columns so far (ignoring holes), used for join path
    /// construction and column-wise verification.
    pub fn referenced_columns(&self) -> Vec<ColumnId> {
        let mut out = Vec::new();
        if let Some(items) = self.select.as_ref() {
            for it in items {
                if let Some(SelectColumn::Column(c)) = it.col.as_ref() {
                    out.push(*c);
                }
            }
        }
        if let Some(preds) = self.where_predicates.as_ref() {
            for p in preds {
                if let Some(c) = p.col.as_ref() {
                    out.push(*c);
                }
            }
        }
        if let Some(group) = self.group_by.as_ref() {
            out.extend(group.iter().copied());
        }
        if let Some(Some(h)) = self.having.as_ref() {
            if let Some(Some(c)) = h.col.as_ref() {
                out.push(*c);
            }
        }
        if let Some(Some(o)) = self.order_by.as_ref() {
            match o.key.as_ref() {
                Some(OrderKey::Column(c)) | Some(OrderKey::Aggregate(_, Some(c))) => out.push(*c),
                _ => {}
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Whether any filled projection carries an aggregate.
    pub fn has_aggregate_projection(&self) -> bool {
        self.select
            .as_ref()
            .map(|items| items.iter().any(|i| matches!(i.agg.as_ref(), Some(Some(_)))))
            .unwrap_or(false)
    }

    /// Whether the WHERE and GROUP BY clauses have no remaining holes, which is
    /// the precondition for row-wise verification of aggregated projections
    /// (paper §3.4, `CanCheckRows`).
    pub fn where_and_group_complete(&self) -> bool {
        let Some(clauses) = self.clauses.as_ref() else { return false };
        if clauses.where_clause {
            match self.where_predicates.as_ref() {
                Some(preds)
                    if !preds.is_empty() && preds.iter().all(PartialPredicate::is_complete) => {}
                _ => return false,
            }
        }
        if clauses.group_by {
            match self.group_by.as_ref() {
                Some(group) if !group.is_empty() => {}
                _ => return false,
            }
        }
        true
    }

    /// Lower a complete partial query to an executable [`SelectSpec`].
    pub fn to_spec(&self) -> SqlResult<SelectSpec> {
        if !self.is_complete() {
            return Err(SqlError::Incomplete("query still contains placeholders".into()));
        }
        let clauses = *self.clauses.as_ref().expect("checked by is_complete");
        let select_items = self.select.as_ref().expect("checked");
        let mut select = Vec::with_capacity(select_items.len());
        for it in select_items {
            let agg = *it.agg.as_ref().expect("checked");
            match it.col.as_ref().expect("checked") {
                SelectColumn::Star => {
                    if agg != Some(AggFunc::Count) {
                        return Err(SqlError::Unsupported("`*` requires COUNT".into()));
                    }
                    select.push(SelectItem::count_star());
                }
                SelectColumn::Column(c) => select.push(SelectItem { agg, col: Some(*c) }),
            }
        }
        let mut predicates = Vec::new();
        if clauses.where_clause {
            for p in self.where_predicates.as_ref().expect("checked") {
                predicates.push(p.to_predicate()?);
            }
        }
        let mut having = Vec::new();
        let mut group_by = Vec::new();
        if clauses.group_by {
            group_by = self.group_by.as_ref().expect("checked").clone();
            if let Some(h) = self.having.as_ref().expect("checked") {
                having.push(h.to_predicate()?);
            }
        }
        let (order_by, limit) = if clauses.order_by {
            let o = self.order_by.as_ref().expect("checked").as_ref().expect("checked");
            (
                Some(OrderSpec {
                    key: *o.key.as_ref().expect("checked"),
                    desc: *o.desc.as_ref().expect("checked"),
                }),
                *o.limit.as_ref().expect("checked"),
            )
        } else {
            (None, None)
        };
        Ok(SelectSpec {
            select,
            distinct: self.distinct,
            join: self.join.clone().ok_or_else(|| SqlError::Incomplete("join path".into()))?,
            predicates,
            predicate_op: *self.where_op.as_ref().unwrap_or(&LogicalOp::And),
            group_by,
            having,
            order_by,
            limit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duoquest_db::{ColumnDef, TableDef};

    fn schema() -> Schema {
        let mut s = Schema::new("m");
        s.add_table(TableDef::new(
            "movies",
            vec![ColumnDef::number("mid"), ColumnDef::text("name"), ColumnDef::number("year")],
            Some(0),
        ));
        s
    }

    fn name_col(s: &Schema) -> ColumnId {
        s.column_id("movies", "name").unwrap()
    }

    fn year_col(s: &Schema) -> ColumnId {
        s.column_id("movies", "year").unwrap()
    }

    #[test]
    fn clause_set_enumeration() {
        let all = ClauseSet::all();
        assert_eq!(all.len(), 8);
        assert_eq!(all[0].count(), 0);
        assert_eq!(all[7].count(), 3);
    }

    #[test]
    fn empty_query_is_incomplete() {
        let q = PartialQuery::empty();
        assert!(!q.is_complete());
        assert!(q.referenced_columns().is_empty());
        assert!(q.to_spec().is_err());
    }

    #[test]
    fn select_item_output_types() {
        let s = schema();
        let item = PartialSelectItem {
            col: Slot::Filled(SelectColumn::Column(name_col(&s))),
            agg: Slot::Filled(None),
        };
        assert_eq!(item.output_type(&s), Some(DataType::Text));
        let counted = PartialSelectItem {
            col: Slot::Filled(SelectColumn::Star),
            agg: Slot::Filled(Some(AggFunc::Count)),
        };
        assert_eq!(counted.output_type(&s), Some(DataType::Number));
        let undecided_agg_text = PartialSelectItem {
            col: Slot::Filled(SelectColumn::Column(name_col(&s))),
            agg: Slot::Hole,
        };
        assert_eq!(undecided_agg_text.output_type(&s), None);
        let undecided_agg_num = PartialSelectItem {
            col: Slot::Filled(SelectColumn::Column(year_col(&s))),
            agg: Slot::Hole,
        };
        assert_eq!(undecided_agg_num.output_type(&s), Some(DataType::Number));
    }

    fn complete_query(s: &Schema) -> PartialQuery {
        PartialQuery {
            clauses: Slot::Filled(ClauseSet { where_clause: true, ..Default::default() }),
            select: Slot::Filled(vec![PartialSelectItem {
                col: Slot::Filled(SelectColumn::Column(name_col(s))),
                agg: Slot::Filled(None),
            }]),
            distinct: false,
            join: Some(JoinTree::single(s.table_id("movies").unwrap())),
            where_predicates: Slot::Filled(vec![PartialPredicate {
                col: Slot::Filled(year_col(s)),
                op: Slot::Filled(CmpOp::Lt),
                value: Slot::Filled(Value::int(1995)),
                value2: None,
            }]),
            where_op: Slot::Filled(LogicalOp::And),
            group_by: Slot::Hole,
            having: Slot::Hole,
            order_by: Slot::Hole,
        }
    }

    #[test]
    fn completeness_and_lowering() {
        let s = schema();
        let q = complete_query(&s);
        assert!(q.is_complete());
        let spec = q.to_spec().unwrap();
        assert_eq!(spec.select.len(), 1);
        assert_eq!(spec.predicates.len(), 1);
        assert_eq!(spec.predicates[0].op, CmpOp::Lt);
    }

    #[test]
    fn missing_predicate_value_blocks_completion() {
        let s = schema();
        let mut q = complete_query(&s);
        if let Slot::Filled(preds) = &mut q.where_predicates {
            preds[0].value = Slot::Hole;
        }
        assert!(!q.is_complete());
        assert!(!q.where_and_group_complete());
    }

    #[test]
    fn group_by_requires_having_decision() {
        let s = schema();
        let mut q = complete_query(&s);
        q.clauses = Slot::Filled(ClauseSet { where_clause: true, group_by: true, order_by: false });
        q.group_by = Slot::Filled(vec![name_col(&s)]);
        // HAVING decision not yet made.
        assert!(!q.is_complete());
        q.having = Slot::Filled(None);
        assert!(q.is_complete());
    }

    #[test]
    fn order_by_requires_full_decision() {
        let s = schema();
        let mut q = complete_query(&s);
        q.clauses = Slot::Filled(ClauseSet { where_clause: true, group_by: false, order_by: true });
        assert!(!q.is_complete());
        q.order_by = Slot::Filled(Some(PartialOrder {
            key: Slot::Filled(OrderKey::Column(year_col(&s))),
            desc: Slot::Filled(false),
            limit: Slot::Hole,
        }));
        assert!(!q.is_complete());
        q.order_by = Slot::Filled(Some(PartialOrder {
            key: Slot::Filled(OrderKey::Column(year_col(&s))),
            desc: Slot::Filled(false),
            limit: Slot::Filled(None),
        }));
        assert!(q.is_complete());
        let spec = q.to_spec().unwrap();
        assert!(spec.order_by.is_some());
        assert_eq!(spec.limit, None);
    }

    #[test]
    fn referenced_columns_collects_all_clauses() {
        let s = schema();
        let mut q = complete_query(&s);
        q.group_by = Slot::Filled(vec![name_col(&s)]);
        let cols = q.referenced_columns();
        assert!(cols.contains(&name_col(&s)));
        assert!(cols.contains(&year_col(&s)));
    }

    #[test]
    fn aggregate_projection_detection() {
        let s = schema();
        let mut q = complete_query(&s);
        assert!(!q.has_aggregate_projection());
        if let Slot::Filled(items) = &mut q.select {
            items.push(PartialSelectItem {
                col: Slot::Filled(SelectColumn::Star),
                agg: Slot::Filled(Some(AggFunc::Count)),
            });
        }
        assert!(q.has_aggregate_projection());
    }

    #[test]
    fn star_without_count_rejected() {
        let s = schema();
        let mut q = complete_query(&s);
        if let Slot::Filled(items) = &mut q.select {
            items[0] = PartialSelectItem {
                col: Slot::Filled(SelectColumn::Star),
                agg: Slot::Filled(Some(AggFunc::Max)),
            };
        }
        assert!(q.to_spec().is_err());
    }
}
