//! Errors for query building, parsing and lowering.

use std::fmt;

/// Errors produced by the SQL layer.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// A referenced table or column does not exist in the schema.
    UnknownIdentifier(String),
    /// The query text could not be parsed.
    Parse(String),
    /// A partial query was used where a complete query is required.
    Incomplete(String),
    /// The query violates the supported SPJA scope.
    Unsupported(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::UnknownIdentifier(s) => write!(f, "unknown identifier `{s}`"),
            SqlError::Parse(s) => write!(f, "parse error: {s}"),
            SqlError::Incomplete(s) => write!(f, "incomplete query: {s}"),
            SqlError::Unsupported(s) => write!(f, "unsupported construct: {s}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<duoquest_db::DbError> for SqlError {
    fn from(e: duoquest_db::DbError) -> Self {
        SqlError::UnknownIdentifier(e.to_string())
    }
}

/// Result alias for the SQL layer.
pub type SqlResult<T> = Result<T, SqlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SqlError::UnknownIdentifier("x".into()).to_string().contains('x'));
        assert!(SqlError::Parse("bad token".into()).to_string().contains("bad token"));
        assert!(SqlError::Incomplete("hole".into()).to_string().contains("hole"));
        assert!(SqlError::Unsupported("nested".into()).to_string().contains("nested"));
    }

    #[test]
    fn from_db_error() {
        let db_err = duoquest_db::DbError::UnknownTable("t".into());
        let e: SqlError = db_err.into();
        assert!(matches!(e, SqlError::UnknownIdentifier(_)));
    }
}
