//! A recursive-descent parser for the supported SPJA SQL subset.
//!
//! The grammar covers exactly the task scope of the paper (§2.5): single-block
//! `SELECT` queries with inner joins on FK-PK relationships, flat `WHERE`
//! predicates combined uniformly with `AND` or `OR`, grouping with an optional
//! `HAVING` predicate, ordering and `LIMIT`. Table aliases (`AS t1`) are
//! supported so the gold queries from the paper's appendix can be written
//! verbatim.

use crate::error::{SqlError, SqlResult};
use duoquest_db::{
    AggFunc, CmpOp, ColumnId, ForeignKey, JoinEdge, JoinTree, LogicalOp, OrderKey, OrderSpec,
    Predicate, Schema, SelectItem, SelectSpec, TableId, Value,
};
use std::collections::HashMap;

/// Parse a SQL string into an executable [`SelectSpec`] against a schema.
pub fn parse_query(schema: &Schema, sql: &str) -> SqlResult<SelectSpec> {
    let tokens = tokenize(sql)?;
    Parser { schema, tokens, pos: 0 }.parse()
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(f64),
    Str(String),
    Symbol(String),
}

impl Token {
    fn is_keyword(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn is_symbol(&self, sym: &str) -> bool {
        matches!(self, Token::Symbol(s) if s == sym)
    }
}

fn tokenize(sql: &str) -> SqlResult<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = sql.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c == '\'' || c == '\u{2019}' || c == '\u{2018}' {
            // Quoted string literal (straight or curly quotes).
            let mut s = String::new();
            i += 1;
            while i < chars.len()
                && chars[i] != '\''
                && chars[i] != '\u{2019}'
                && chars[i] != '\u{2018}'
            {
                s.push(chars[i]);
                i += 1;
            }
            if i >= chars.len() {
                return Err(SqlError::Parse("unterminated string literal".into()));
            }
            i += 1;
            tokens.push(Token::Str(s));
        } else if c.is_ascii_digit()
            || (c == '-' && i + 1 < chars.len() && chars[i + 1].is_ascii_digit())
        {
            let start = i;
            i += 1;
            while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            let n: f64 =
                text.parse().map_err(|_| SqlError::Parse(format!("invalid number `{text}`")))?;
            tokens.push(Token::Number(n));
        } else if c.is_alphabetic() || c == '_' || c == '"' {
            // Identifier, possibly double-quoted.
            let quoted = c == '"';
            if quoted {
                i += 1;
            }
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let ident: String = chars[start..i].iter().collect();
            if quoted {
                if i < chars.len() && chars[i] == '"' {
                    i += 1;
                } else {
                    return Err(SqlError::Parse("unterminated quoted identifier".into()));
                }
            }
            tokens.push(Token::Ident(ident));
        } else {
            // Symbols, including two-character comparison operators.
            let two: String = chars[i..(i + 2).min(chars.len())].iter().collect();
            if two == "<=" || two == ">=" || two == "!=" || two == "<>" {
                tokens.push(Token::Symbol(if two == "<>" { "!=".into() } else { two }));
                i += 2;
            } else if "(),.*=<>".contains(c) {
                tokens.push(Token::Symbol(c.to_string()));
                i += 1;
            } else {
                return Err(SqlError::Parse(format!("unexpected character `{c}`")));
            }
        }
    }
    Ok(tokens)
}

/// Intermediate, unresolved column reference (`alias.column` or bare `column`).
#[derive(Debug, Clone)]
struct RawColumn {
    qualifier: Option<String>,
    name: String,
}

/// Intermediate select/order expression.
#[derive(Debug, Clone)]
struct RawExpr {
    agg: Option<AggFunc>,
    star: bool,
    col: Option<RawColumn>,
}

struct RawPredicate {
    expr: RawExpr,
    op: CmpOp,
    value: Value,
    value2: Option<Value>,
}

struct Parser<'a> {
    schema: &'a Schema,
    tokens: Vec<Token>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek().map(|t| t.is_keyword(kw)).unwrap_or(false) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> SqlResult<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!("expected `{kw}` at token {}", self.pos)))
        }
    }

    fn eat_symbol(&mut self, sym: &str) -> bool {
        if self.peek().map(|t| t.is_symbol(sym)).unwrap_or(false) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: &str) -> SqlResult<()> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!("expected `{sym}` at token {}", self.pos)))
        }
    }

    fn parse(mut self) -> SqlResult<SelectSpec> {
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");
        let mut raw_select = vec![self.parse_expr()?];
        while self.eat_symbol(",") {
            raw_select.push(self.parse_expr()?);
        }

        self.expect_keyword("FROM")?;
        let (aliases, tables, join_edges) = self.parse_from()?;

        let mut raw_preds = Vec::new();
        let mut pred_op = LogicalOp::And;
        if self.eat_keyword("WHERE") {
            raw_preds.push(self.parse_predicate()?);
            loop {
                if self.eat_keyword("AND") {
                    raw_preds.push(self.parse_predicate()?);
                } else if self.eat_keyword("OR") {
                    pred_op = LogicalOp::Or;
                    raw_preds.push(self.parse_predicate()?);
                } else {
                    break;
                }
            }
        }

        let mut raw_group = Vec::new();
        let mut raw_having = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            raw_group.push(self.parse_column()?);
            while self.eat_symbol(",") {
                raw_group.push(self.parse_column()?);
            }
            if self.eat_keyword("HAVING") {
                raw_having.push(self.parse_predicate()?);
                while self.eat_keyword("AND") {
                    raw_having.push(self.parse_predicate()?);
                }
            }
        }

        let mut raw_order: Option<(RawExpr, bool)> = None;
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            let expr = self.parse_expr()?;
            let desc = if self.eat_keyword("DESC") {
                true
            } else {
                self.eat_keyword("ASC");
                false
            };
            raw_order = Some((expr, desc));
        }

        let mut limit = None;
        if self.eat_keyword("LIMIT") {
            match self.next() {
                Some(Token::Number(n)) if n >= 0.0 => limit = Some(n as usize),
                _ => return Err(SqlError::Parse("LIMIT requires a non-negative number".into())),
            }
        }

        if self.pos != self.tokens.len() {
            return Err(SqlError::Parse(format!("trailing tokens at position {}", self.pos)));
        }

        // Resolution phase.
        let resolver = Resolver { schema: self.schema, aliases, tables: tables.clone() };
        let mut select = Vec::with_capacity(raw_select.len());
        for e in &raw_select {
            select.push(resolver.resolve_item(e)?);
        }
        let predicates = raw_preds
            .iter()
            .map(|p| resolver.resolve_predicate(p, false))
            .collect::<SqlResult<Vec<_>>>()?;
        let having = raw_having
            .iter()
            .map(|p| resolver.resolve_predicate(p, true))
            .collect::<SqlResult<Vec<_>>>()?;
        let group_by =
            raw_group.iter().map(|c| resolver.resolve_column(c)).collect::<SqlResult<Vec<_>>>()?;
        let order_by = match raw_order {
            None => None,
            Some((expr, desc)) => {
                let key = if let Some(agg) = expr.agg {
                    let col = if expr.star {
                        None
                    } else {
                        Some(resolver.resolve_column(expr.col.as_ref().ok_or_else(|| {
                            SqlError::Parse("aggregate in ORDER BY requires a column or *".into())
                        })?)?)
                    };
                    OrderKey::Aggregate(agg, col)
                } else {
                    OrderKey::Column(
                        resolver.resolve_column(expr.col.as_ref().ok_or_else(|| {
                            SqlError::Parse("ORDER BY requires a column".into())
                        })?)?,
                    )
                };
                Some(OrderSpec { key, desc })
            }
        };
        let join = build_join_tree(self.schema, &resolver.aliases, &tables, &join_edges)?;

        Ok(SelectSpec {
            select,
            distinct,
            join,
            predicates,
            predicate_op: pred_op,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    /// Parse a select/order expression: `AGG(col | *)` or a bare column.
    fn parse_expr(&mut self) -> SqlResult<RawExpr> {
        if let Some(Token::Ident(name)) = self.peek() {
            if let Some(agg) = parse_agg_name(name) {
                // Only treat as an aggregate when followed by `(`.
                if self.tokens.get(self.pos + 1).map(|t| t.is_symbol("(")).unwrap_or(false) {
                    self.pos += 2; // consume name and `(`
                    let (star, col) = if self.eat_symbol("*") {
                        (true, None)
                    } else {
                        (false, Some(self.parse_column()?))
                    };
                    self.expect_symbol(")")?;
                    return Ok(RawExpr { agg: Some(agg), star, col });
                }
            }
        }
        let col = self.parse_column()?;
        Ok(RawExpr { agg: None, star: false, col: Some(col) })
    }

    /// Parse `qualifier.column` or a bare `column`.
    fn parse_column(&mut self) -> SqlResult<RawColumn> {
        let first = match self.next() {
            Some(Token::Ident(s)) => s,
            other => return Err(SqlError::Parse(format!("expected column name, got {other:?}"))),
        };
        if self.eat_symbol(".") {
            let second = match self.next() {
                Some(Token::Ident(s)) => s,
                other => {
                    return Err(SqlError::Parse(format!(
                        "expected column after `.`, got {other:?}"
                    )))
                }
            };
            Ok(RawColumn { qualifier: Some(first), name: second })
        } else {
            Ok(RawColumn { qualifier: None, name: first })
        }
    }

    /// Parse a predicate: `expr op value`, `expr BETWEEN v AND v`, `expr LIKE s`.
    fn parse_predicate(&mut self) -> SqlResult<RawPredicate> {
        let expr = self.parse_expr()?;
        if self.eat_keyword("BETWEEN") {
            let lo = self.parse_value()?;
            self.expect_keyword("AND")?;
            let hi = self.parse_value()?;
            return Ok(RawPredicate { expr, op: CmpOp::Between, value: lo, value2: Some(hi) });
        }
        if self.eat_keyword("LIKE") {
            let v = self.parse_value()?;
            return Ok(RawPredicate { expr, op: CmpOp::Like, value: v, value2: None });
        }
        let op = match self.next() {
            Some(Token::Symbol(s)) => match s.as_str() {
                "=" => CmpOp::Eq,
                "!=" => CmpOp::Ne,
                "<" => CmpOp::Lt,
                "<=" => CmpOp::Le,
                ">" => CmpOp::Gt,
                ">=" => CmpOp::Ge,
                _ => return Err(SqlError::Parse(format!("unknown operator `{s}`"))),
            },
            other => return Err(SqlError::Parse(format!("expected operator, got {other:?}"))),
        };
        let value = self.parse_value()?;
        Ok(RawPredicate { expr, op, value, value2: None })
    }

    fn parse_value(&mut self) -> SqlResult<Value> {
        match self.next() {
            Some(Token::Number(n)) => Ok(Value::Number(n)),
            Some(Token::Str(s)) => Ok(Value::Text(s)),
            other => Err(SqlError::Parse(format!("expected literal value, got {other:?}"))),
        }
    }

    /// Parse the FROM clause: tables with optional aliases and JOIN ... ON conditions.
    #[allow(clippy::type_complexity)]
    fn parse_from(
        &mut self,
    ) -> SqlResult<(HashMap<String, TableId>, Vec<TableId>, Vec<(RawColumn, RawColumn)>)> {
        let mut aliases = HashMap::new();
        let mut tables = Vec::new();
        let mut join_edges = Vec::new();

        let first = self.parse_table_ref(&mut aliases)?;
        tables.push(first);
        while self.eat_keyword("JOIN") {
            let t = self.parse_table_ref(&mut aliases)?;
            tables.push(t);
            self.expect_keyword("ON")?;
            let left = self.parse_column()?;
            self.expect_symbol("=")?;
            let right = self.parse_column()?;
            join_edges.push((left, right));
        }
        Ok((aliases, tables, join_edges))
    }

    fn parse_table_ref(&mut self, aliases: &mut HashMap<String, TableId>) -> SqlResult<TableId> {
        let name = match self.next() {
            Some(Token::Ident(s)) => s,
            other => return Err(SqlError::Parse(format!("expected table name, got {other:?}"))),
        };
        let tid = self.schema.table_id(&name)?;
        aliases.insert(name.to_ascii_lowercase(), tid);
        // Optional `AS alias` or bare alias (an identifier that is not a clause keyword).
        if self.eat_keyword("AS") {
            match self.next() {
                Some(Token::Ident(a)) => {
                    aliases.insert(a.to_ascii_lowercase(), tid);
                }
                other => return Err(SqlError::Parse(format!("expected alias, got {other:?}"))),
            }
        } else if let Some(Token::Ident(a)) = self.peek() {
            const CLAUSE_KEYWORDS: [&str; 10] =
                ["JOIN", "ON", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "AND", "OR", "BY"];
            if !CLAUSE_KEYWORDS.iter().any(|k| a.eq_ignore_ascii_case(k)) {
                let a = a.clone();
                self.pos += 1;
                aliases.insert(a.to_ascii_lowercase(), tid);
            }
        }
        Ok(tid)
    }
}

fn parse_agg_name(name: &str) -> Option<AggFunc> {
    match name.to_ascii_uppercase().as_str() {
        "COUNT" => Some(AggFunc::Count),
        "SUM" => Some(AggFunc::Sum),
        "AVG" => Some(AggFunc::Avg),
        "MIN" => Some(AggFunc::Min),
        "MAX" => Some(AggFunc::Max),
        _ => None,
    }
}

struct Resolver<'a> {
    schema: &'a Schema,
    aliases: HashMap<String, TableId>,
    tables: Vec<TableId>,
}

impl<'a> Resolver<'a> {
    fn resolve_column(&self, raw: &RawColumn) -> SqlResult<ColumnId> {
        match &raw.qualifier {
            Some(q) => {
                let tid = self
                    .aliases
                    .get(&q.to_ascii_lowercase())
                    .copied()
                    .ok_or_else(|| SqlError::UnknownIdentifier(format!("alias `{q}`")))?;
                let table_name = &self.schema.table(tid).name;
                Ok(self.schema.column_id(table_name, &raw.name)?)
            }
            None => {
                let mut found = None;
                for &tid in &self.tables {
                    if let Some(ci) = self.schema.table(tid).column_index(&raw.name) {
                        if found.is_some() {
                            return Err(SqlError::UnknownIdentifier(format!(
                                "ambiguous column `{}`",
                                raw.name
                            )));
                        }
                        found = Some(ColumnId { table: tid, column: ci });
                    }
                }
                found.ok_or_else(|| SqlError::UnknownIdentifier(format!("column `{}`", raw.name)))
            }
        }
    }

    fn resolve_item(&self, raw: &RawExpr) -> SqlResult<SelectItem> {
        match (raw.agg, raw.star, &raw.col) {
            (Some(agg), true, _) => {
                if agg == AggFunc::Count {
                    Ok(SelectItem::count_star())
                } else {
                    Err(SqlError::Unsupported(format!("{agg}(*) is not supported")))
                }
            }
            (Some(agg), false, Some(col)) => {
                Ok(SelectItem::aggregate(agg, self.resolve_column(col)?))
            }
            (None, false, Some(col)) => Ok(SelectItem::column(self.resolve_column(col)?)),
            _ => Err(SqlError::Parse("malformed select item".into())),
        }
    }

    fn resolve_predicate(&self, raw: &RawPredicate, having: bool) -> SqlResult<Predicate> {
        let (agg, col) = match (raw.expr.agg, raw.expr.star, &raw.expr.col) {
            (Some(agg), true, _) => (Some(agg), None),
            (Some(agg), false, Some(c)) => (Some(agg), Some(self.resolve_column(c)?)),
            (None, false, Some(c)) => (None, Some(self.resolve_column(c)?)),
            _ => return Err(SqlError::Parse("malformed predicate".into())),
        };
        if having && agg.is_none() {
            return Err(SqlError::Unsupported("HAVING predicates must be aggregated".into()));
        }
        if !having && agg.is_some() {
            return Err(SqlError::Unsupported("aggregates are not allowed in WHERE".into()));
        }
        Ok(Predicate { agg, col, op: raw.op, value: raw.value.clone(), value2: raw.value2.clone() })
    }
}

/// Construct the join tree, checking every ON condition corresponds to a
/// declared foreign key.
fn build_join_tree(
    schema: &Schema,
    aliases: &HashMap<String, TableId>,
    tables: &[TableId],
    raw_edges: &[(RawColumn, RawColumn)],
) -> SqlResult<JoinTree> {
    if tables.len() == 1 {
        return Ok(JoinTree::single(tables[0]));
    }
    // Resolve each ON condition against the declared FKs (in either direction).
    let mut edges = Vec::with_capacity(raw_edges.len());
    for (left, right) in raw_edges {
        let l = resolve_on_column(schema, aliases, tables, left)?;
        let r = resolve_on_column(schema, aliases, tables, right)?;
        let fk = schema
            .foreign_keys
            .iter()
            .find(|fk| (fk.from == l && fk.to == r) || (fk.from == r && fk.to == l))
            .copied();
        let fk = match fk {
            Some(fk) => fk,
            None => {
                return Err(SqlError::Unsupported(format!(
                    "join condition {} = {} does not correspond to a declared foreign key",
                    schema.qualified_name(l),
                    schema.qualified_name(r)
                )))
            }
        };
        edges.push(JoinEdge { fk });
    }
    let tree = JoinTree::new(tables.to_vec(), edges);
    if !tree.is_connected() {
        return Err(SqlError::Unsupported("FROM clause tables are not connected by joins".into()));
    }
    Ok(tree)
}

fn resolve_on_column(
    schema: &Schema,
    aliases: &HashMap<String, TableId>,
    tables: &[TableId],
    raw: &RawColumn,
) -> SqlResult<ColumnId> {
    // The qualifier may be an alias (`t1`) or the table name itself; either way
    // the alias map points at the right table.
    if let Some(q) = &raw.qualifier {
        if let Some(&tid) = aliases.get(&q.to_ascii_lowercase()) {
            if let Some(ci) = schema.table(tid).column_index(&raw.name) {
                return Ok(ColumnId { table: tid, column: ci });
            }
        }
        if let Ok(tid) = schema.table_id(q) {
            if let Some(ci) = schema.table(tid).column_index(&raw.name) {
                return Ok(ColumnId { table: tid, column: ci });
            }
        }
    }
    let mut candidates: Vec<ColumnId> = Vec::new();
    for &tid in tables {
        if let Some(ci) = schema.table(tid).column_index(&raw.name) {
            candidates.push(ColumnId { table: tid, column: ci });
        }
    }
    match candidates.len() {
        0 => Err(SqlError::UnknownIdentifier(format!("join column `{}`", raw.name))),
        _ => Ok(candidates[0]),
    }
}

/// Re-export of the foreign key type used in join construction.
#[allow(unused)]
type Fk = ForeignKey;

#[cfg(test)]
mod tests {
    use super::*;
    use duoquest_db::{ColumnDef, TableDef};

    fn schema() -> Schema {
        let mut s = Schema::new("mas");
        s.add_table(TableDef::new(
            "conference",
            vec![ColumnDef::number("cid"), ColumnDef::text("name")],
            Some(0),
        ));
        s.add_table(TableDef::new(
            "publication",
            vec![
                ColumnDef::number("pid"),
                ColumnDef::text("title"),
                ColumnDef::number("year"),
                ColumnDef::number("cid"),
            ],
            Some(0),
        ));
        s.add_table(TableDef::new(
            "author",
            vec![ColumnDef::number("aid"), ColumnDef::text("name")],
            Some(0),
        ));
        s.add_table(TableDef::new(
            "writes",
            vec![ColumnDef::number("aid"), ColumnDef::number("pid")],
            None,
        ));
        s.add_foreign_key("publication", "cid", "conference", "cid").unwrap();
        s.add_foreign_key("writes", "aid", "author", "aid").unwrap();
        s.add_foreign_key("writes", "pid", "publication", "pid").unwrap();
        s
    }

    #[test]
    fn parse_simple_select() {
        let s = schema();
        let q = parse_query(&s, "SELECT name FROM conference").unwrap();
        assert_eq!(q.select.len(), 1);
        assert_eq!(q.join.tables.len(), 1);
    }

    #[test]
    fn parse_paper_task_a1() {
        let s = schema();
        let q = parse_query(
            &s,
            "SELECT t2.title, t2.year FROM conference AS t1 JOIN publication AS t2 \
             ON t1.cid = t2.cid WHERE t1.name = 'SIGMOD'",
        )
        .unwrap();
        assert_eq!(q.select.len(), 2);
        assert_eq!(q.join.tables.len(), 2);
        assert_eq!(q.join.join_length(), 1);
        assert_eq!(q.predicates.len(), 1);
        assert_eq!(q.predicates[0].value, Value::text("SIGMOD"));
    }

    #[test]
    fn parse_group_by_having_order() {
        let s = schema();
        let q = parse_query(
            &s,
            "SELECT t1.name, COUNT(*) FROM author AS t1 JOIN writes AS t2 ON t1.aid = t2.aid \
             JOIN publication AS t3 ON t2.pid = t3.pid GROUP BY t1.name \
             HAVING COUNT(*) > 50 ORDER BY COUNT(*) DESC LIMIT 10",
        )
        .unwrap();
        assert!(q.has_aggregates());
        assert_eq!(q.group_by.len(), 1);
        assert_eq!(q.having.len(), 1);
        assert_eq!(q.having[0].op, CmpOp::Gt);
        assert_eq!(q.limit, Some(10));
        assert!(matches!(q.order_by.unwrap().key, OrderKey::Aggregate(AggFunc::Count, None)));
    }

    #[test]
    fn parse_or_and_between_and_like() {
        let s = schema();
        let q = parse_query(&s, "SELECT title FROM publication WHERE year < 1995 OR year > 2000")
            .unwrap();
        assert_eq!(q.predicate_op, LogicalOp::Or);
        let q = parse_query(&s, "SELECT title FROM publication WHERE year BETWEEN 2010 AND 2017")
            .unwrap();
        assert_eq!(q.predicates[0].op, CmpOp::Between);
        assert_eq!(q.predicates[0].value2, Some(Value::int(2017)));
        let q = parse_query(&s, "SELECT name FROM conference WHERE name LIKE '%SIG%'").unwrap();
        assert_eq!(q.predicates[0].op, CmpOp::Like);
    }

    #[test]
    fn parse_distinct_and_unqualified_columns() {
        let s = schema();
        let q =
            parse_query(&s, "SELECT DISTINCT title FROM publication ORDER BY year DESC").unwrap();
        assert!(q.distinct);
        assert!(q.order_by.unwrap().desc);
    }

    #[test]
    fn reject_bad_join_condition() {
        let s = schema();
        let err = parse_query(
            &s,
            "SELECT t1.name FROM author AS t1 JOIN publication AS t2 ON t1.aid = t2.pid",
        );
        assert!(matches!(err, Err(SqlError::Unsupported(_))));
    }

    #[test]
    fn reject_unknown_column_and_trailing_tokens() {
        let s = schema();
        assert!(parse_query(&s, "SELECT nosuch FROM conference").is_err());
        assert!(parse_query(&s, "SELECT name FROM conference extra junk ,").is_err());
    }

    #[test]
    fn reject_aggregate_in_where() {
        let s = schema();
        let err = parse_query(&s, "SELECT name FROM conference WHERE COUNT(*) > 3");
        assert!(matches!(err, Err(SqlError::Unsupported(_))));
    }

    #[test]
    fn curly_quotes_accepted() {
        let s = schema();
        let q = parse_query(&s, "SELECT name FROM conference WHERE name = \u{2019}VLDB\u{2019}")
            .unwrap();
        assert_eq!(q.predicates[0].value, Value::text("VLDB"));
    }
}
