//! # duoquest
//!
//! Facade crate for the Duoquest reproduction: dual-specification SQL query
//! synthesis from a natural language query (NLQ) plus an optional table sketch
//! query (TSQ), using guided partial query enumeration (GPQE).
//!
//! This crate simply re-exports the workspace crates under stable names:
//!
//! * [`obs`] — tracing, metrics and flight-recorder substrate (see
//!   `docs/OBSERVABILITY.md`)
//! * [`db`] — in-memory relational engine substrate
//! * [`sql`] — SQL AST, partial queries, parser and canonical comparison
//! * [`nlq`] — natural language query handling and guidance models
//! * [`core`] — table sketch queries, GPQE and cascading verification
//! * [`service`] — multi-tenant serving layer: priorities, cancellation,
//!   deadlines and admission control over the shared session scheduler
//! * [`net`] — dependency-free TCP front over the service: hand-rolled
//!   HTTP/1.1 with chunked NDJSON candidate streaming (see `docs/NET.md`)
//! * [`baselines`] — NLI, PBE and ablation baselines from the paper's evaluation
//! * [`workloads`] — synthetic MAS and Spider-like workloads and simulated users
//!
//! See `examples/quickstart.rs` for a complete end-to-end walk-through.

pub use duoquest_baselines as baselines;
pub use duoquest_core as core;
pub use duoquest_db as db;
pub use duoquest_net as net;
pub use duoquest_nlq as nlq;
pub use duoquest_obs as obs;
pub use duoquest_service as service;
pub use duoquest_sql as sql;
pub use duoquest_workloads as workloads;
