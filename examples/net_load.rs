//! Load test for the TCP serving front: **1k+ concurrent connections**
//! through the real socket path, every completed stream checked
//! byte-identical to in-process submission.
//!
//! One process hosts both sides. The server is a `NetServer` over a
//! `SynthesisService` sized to hold every request live at once; the client
//! half opens `NET_LOAD_CONNECTIONS` sockets (default 1024), proves they
//! are all **concurrently open**, then multiplexes every chunked NDJSON
//! stream from a single thread with non-blocking reads.
//!
//! Asserted:
//!
//! * all connections are concurrently open before the first submit;
//! * every request completes, and its candidate lines are byte-identical
//!   to an in-process submission of the same task;
//! * nothing is shed and no connection drops under full load;
//! * service and front drain back to idle (no leaked slot, thread or fd).
//!
//! Printed: client-side TTFC percentiles, shed/disconnect tallies, and the
//! live `/stats` JSON — the same numbers `benches/net.rs` tracks.
//!
//! Run with: `cargo run --release --example net_load`
//! (CI runs it with `NET_LOAD_CONNECTIONS=128` as a smoke step.)

use duoquest::core::DuoquestConfig;
use duoquest::net::{client, wire, NetConfig, NetServer, TaskRegistry, TaskSpec};
use duoquest::nlq::NoisyOracleGuidance;
use duoquest::service::{ServiceConfig, SynthesisRequest, SynthesisService};
use duoquest::workloads::{spider, synthesize_tsq, TsqDetail};
use std::io::{ErrorKind, Read};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let connections: usize =
        std::env::var("NET_LOAD_CONNECTIONS").ok().and_then(|v| v.parse().ok()).unwrap_or(1024);

    // ── server side ──────────────────────────────────────────────────────
    let dataset = spider::generate("net-load", 1, 2, 2, 2, 53);
    // A light engine budget with deterministic emission: the point is
    // connection scale and byte identity, not search depth.
    let config = DuoquestConfig {
        max_candidates: 5,
        max_expansions: 250,
        time_budget: None,
        workers: 1,
        ..Default::default()
    };
    let service = Arc::new(SynthesisService::new(ServiceConfig {
        workers: 2,
        max_live_sessions: connections, // everything live, nothing queued
        max_queued: 64,
        ..ServiceConfig::default()
    }));
    let mut registry = TaskRegistry::new();
    let mut task_names = Vec::new();
    for (index, task) in dataset.tasks.iter().enumerate() {
        let db = dataset.database(task);
        let (gold, tsq) = synthesize_tsq(db, &task.gold, TsqDetail::Full, 2, index as u64);
        let model = Arc::new(NoisyOracleGuidance::new(gold, index as u64));
        let name = format!("task-{index}");
        registry.register(
            &name,
            TaskSpec {
                db: Arc::clone(db),
                nlq: task.nlq.clone(),
                model,
                tsq: Some(tsq),
                config: config.clone(),
            },
        );
        task_names.push(name);
    }
    let net_cfg = NetConfig {
        // Generous read timeout: every socket is held open idle while the
        // full set connects.
        read_timeout: Duration::from_secs(120),
        ..NetConfig::default()
    };
    let mut server = NetServer::bind("127.0.0.1:0", Arc::clone(&service), registry, net_cfg)
        .expect("bind ephemeral port");
    let addr = server.addr();

    // ── in-process references, one per task ──────────────────────────────
    let references: Vec<Vec<String>> = dataset
        .tasks
        .iter()
        .enumerate()
        .map(|(index, task)| {
            let db = dataset.database(task);
            let (gold, tsq) = synthesize_tsq(db, &task.gold, TsqDetail::Full, 2, index as u64);
            let model = Arc::new(NoisyOracleGuidance::new(gold, index as u64));
            let request = SynthesisRequest::new(Arc::clone(db), task.nlq.clone(), model)
                .with_tsq(tsq)
                .with_config(config.clone());
            let schema_db = Arc::clone(db);
            service
                .submit(request)
                .expect("reference submit")
                .enumerate()
                .map(|(k, c)| {
                    wire::candidate_line(k, &c, schema_db.schema()).trim_end().to_string()
                })
                .collect()
        })
        .collect();
    assert!(references.iter().all(|r| !r.is_empty()), "every task must emit candidates");

    // ── client side: connect everything before submitting anything ───────
    let started = Instant::now();
    let mut sockets: Vec<TcpStream> = (0..connections)
        .map(|i| {
            TcpStream::connect(addr)
                .unwrap_or_else(|e| panic!("connect {i}/{connections} failed: {e}"))
        })
        .collect();
    // Every socket is open at once — wait for the acceptor to surface them
    // all, proving `connections` concurrently open connections.
    let gauge_deadline = Instant::now() + Duration::from_secs(60);
    while server.open_connections() < connections {
        assert!(
            Instant::now() < gauge_deadline,
            "only {} of {connections} connections became concurrently open",
            server.open_connections()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let peak_open = server.open_connections();
    println!(
        "{peak_open} connections concurrently open in {:.1?} (fd pressure held on both sides)",
        started.elapsed()
    );

    for (i, socket) in sockets.iter_mut().enumerate() {
        let frame = wire::SubmitWire::task(&task_names[i % task_names.len()]);
        client::send_request(socket, "POST", "/submit", Some(&frame.to_json()))
            .unwrap_or_else(|e| panic!("submit on connection {i} failed: {e}"));
        socket.set_nonblocking(true).expect("nonblocking");
    }
    let submitted_at = Instant::now();
    println!("{connections} submits in flight across {} distinct tasks", task_names.len());

    // ── single-threaded multiplexed sweep over all streams ───────────────
    struct Conn {
        socket: TcpStream,
        decoder: client::ResponseDecoder,
        lines: Vec<String>,
        ttfc: Option<Duration>,
        done: bool,
    }
    let mut conns: Vec<Conn> = sockets
        .into_iter()
        .map(|socket| Conn {
            socket,
            decoder: client::ResponseDecoder::new(),
            lines: Vec::new(),
            ttfc: None,
            done: false,
        })
        .collect();
    let mut buf = [0u8; 16 * 1024];
    let mut remaining = conns.len();
    let sweep_deadline = Instant::now() + Duration::from_secs(600);
    while remaining > 0 {
        assert!(Instant::now() < sweep_deadline, "{remaining} streams never finished");
        let mut progressed = false;
        for (i, conn) in conns.iter_mut().enumerate().filter(|(_, c)| !c.done) {
            let mut eof = false;
            loop {
                match conn.socket.read(&mut buf) {
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(n) => {
                        progressed = true;
                        conn.decoder.feed(&buf[..n]);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) => panic!("stream {i} read failed: {e}"),
                }
            }
            for line in conn.decoder.take_lines() {
                if conn.ttfc.is_none() && line.contains("\"event\":\"candidate\"") {
                    conn.ttfc = Some(submitted_at.elapsed());
                }
                conn.lines.push(line);
            }
            if conn.decoder.is_done() {
                conn.done = true;
                remaining -= 1;
            } else {
                assert!(!eof, "connection {i} closed mid-stream");
            }
        }
        if !progressed {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let drained_in = submitted_at.elapsed();

    // ── verify: byte identity and clean terminal events ──────────────────
    for (i, conn) in conns.iter().enumerate() {
        assert_eq!(conn.decoder.status(), Some(200), "connection {i} got a non-200");
        let lines = &conn.lines;
        assert!(lines.len() >= 2, "connection {i} stream too short: {lines:?}");
        assert!(lines[0].contains("\"event\":\"accepted\""), "connection {i}: {:?}", lines[0]);
        let done = &lines[lines.len() - 1];
        assert!(
            done.contains("\"status\":\"completed\"") && done.contains("\"shed\":false"),
            "connection {i} did not complete cleanly: {done:?}"
        );
        let reference = &references[i % references.len()];
        let candidates = &lines[1..lines.len() - 1];
        assert_eq!(
            candidates, reference,
            "connection {i}: socket stream diverged from in-process submission"
        );
    }
    println!(
        "all {connections} streams byte-identical to in-process submission \
         ({} candidate lines checked) in {drained_in:.1?}",
        conns.iter().map(|c| c.lines.len() - 2).sum::<usize>(),
    );

    // ── metrics: client-side TTFC percentiles + the server's own numbers ──
    let mut ttfc: Vec<Duration> = conns.iter().filter_map(|c| c.ttfc).collect();
    ttfc.sort_unstable();
    assert!(!ttfc.is_empty(), "no stream saw a first candidate");
    let pct = |p: usize| ttfc[(ttfc.len() - 1) * p / 100];
    println!(
        "client-side TTFC p50={:.1?} p95={:.1?} max={:.1?} ({} streams with candidates)",
        pct(50),
        pct(95),
        pct(100),
        ttfc.len()
    );

    use std::sync::atomic::Ordering::Relaxed;
    let metrics = server.metrics();
    assert_eq!(metrics.admission_shed.load(Relaxed), 0, "nothing may be shed at admission");
    assert_eq!(metrics.overflow_shed.load(Relaxed), 0, "no outbox may overflow");
    assert_eq!(metrics.disconnects.load(Relaxed), 0, "no connection may drop");
    assert_eq!(metrics.completed.load(Relaxed), connections as u64);
    println!("shed: admission=0 overflow=0 disconnects=0; peak {peak_open} open connections");

    // ── drain: no leaked slot, thread or fd ──────────────────────────────
    drop(conns);
    let idle_deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let stats = service.stats();
        if stats.live_sessions == 0 && stats.queued_requests == 0 && server.open_connections() == 0
        {
            break;
        }
        assert!(
            Instant::now() < idle_deadline,
            "did not drain: live={} queued={} open={}",
            stats.live_sessions,
            stats.queued_requests,
            server.open_connections()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let stats_body = client::request(addr, "GET", "/stats", None, Duration::from_secs(10))
        .expect("stats after load")
        .body;
    println!("live /stats after drain: {}", stats_body.trim());

    // ── scrape /metrics: well-formed Prometheus text with the full set ────
    let scrape = client::request(addr, "GET", "/metrics", None, Duration::from_secs(10))
        .expect("metrics scrape after load");
    assert_eq!(scrape.status, 200, "metrics scrape got a non-200");
    duoquest::obs::validate_exposition(&scrape.body)
        .unwrap_or_else(|e| panic!("malformed /metrics exposition: {e}"));
    for needed in [
        "duoquest_requests_submitted_total",
        "duoquest_requests_completed_total",
        "duoquest_ttfc_us_bucket",
        "duoquest_queue_wait_us_count",
        "duoquest_live_sessions",
        "duoquest_flight_traces",
        "duoquest_scheduler_units_executed_total",
        "duoquest_net_requests_total{route=\"submit\"}",
        "duoquest_net_connections_accepted_total",
        "duoquest_net_uptime_us",
        "duoquest_db_probe_cache_hits_total",
        "duoquest_db_single_flight_lookups_total",
        "duoquest_db_single_flight_hits_total",
        "duoquest_db_single_flight_leaders_total",
    ] {
        assert!(scrape.body.contains(needed), "metric missing from /metrics scrape: {needed}");
    }
    let lines = scrape.body.lines().count();
    println!("/metrics scrape valid: {lines} exposition lines, full metric set present");

    server.shutdown(Duration::from_secs(10));
    println!(
        "drained to idle; total wall clock {:.1?} — the socket front held {connections} \
         concurrent streams with no async runtime and no per-request engine thread",
        started.elapsed()
    );
}
