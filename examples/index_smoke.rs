//! Index smoke test: ordered secondary indexes end to end.
//!
//! Builds a high-fanout two-table database, then exercises each index-backed
//! access path against its pure-scan twin and asserts both that the emitted
//! rows are identical and that the index path scans measurably fewer rows:
//!
//! * an equality probe served by an index point restriction;
//! * a join probed as an index-nested-loop join (no build-side hash);
//! * `ORDER BY … LIMIT k` on an indexed-but-unsorted column streaming
//!   straight off the ordered index;
//! * an impossible predicate bailing before scanning anything.
//!
//! Run with: `cargo run --example index_smoke`

use duoquest::db::{
    execute_with, CmpOp, ColumnDef, Database, ExecOptions, JoinGraph, JoinTree, OrderKey,
    OrderSpec, Predicate, Schema, SelectItem, SelectSpec, TableDef, Value,
};

fn build_database() -> Database {
    let mut schema = Schema::new("fanout");
    schema.add_table(TableDef::new(
        "category",
        vec![ColumnDef::number("cid"), ColumnDef::text("label")],
        Some(0),
    ));
    schema.add_table(TableDef::new(
        "item",
        vec![ColumnDef::number("id"), ColumnDef::number("cid"), ColumnDef::text("name")],
        Some(0),
    ));
    schema.add_foreign_key("item", "cid", "category", "cid").unwrap();
    let mut db = Database::new(schema).unwrap();
    db.insert_all(
        "category",
        (0..50).map(|i| vec![Value::int(i), Value::text(format!("category-{i:02}"))]),
    )
    .unwrap();
    // Item names are deliberately inserted out of order so no column is
    // stored sorted and ORDER BY must come from the index.
    db.insert_all(
        "item",
        (0..4000).map(|i| {
            vec![Value::int(i), Value::int(i % 50), Value::text(format!("item-{:04}", 3999 - i))]
        }),
    )
    .unwrap();
    db.rebuild_index();
    db
}

/// Run `spec` with and without index access, assert the emitted rows are
/// byte-identical, and return the `(indexed, scan)` metrics pair.
fn both_ways(
    db: &Database,
    spec: &SelectSpec,
    what: &str,
) -> (duoquest::db::ExecMetrics, duoquest::db::ExecMetrics) {
    let indexed = execute_with(db, spec, &ExecOptions::default()).unwrap();
    let scan =
        execute_with(db, spec, &ExecOptions { index_access: false, ..ExecOptions::default() })
            .unwrap();
    assert_eq!(indexed.result, scan.result, "{what}: index path diverged from the scan path");
    println!(
        "{what}: {} rows, scanned {} via index vs {} via scan ({} index lookups, {} rows \
         via index)",
        indexed.result.len(),
        indexed.metrics.rows_scanned,
        scan.metrics.rows_scanned,
        indexed.metrics.index_lookups,
        indexed.metrics.rows_via_index,
    );
    (indexed.metrics, scan.metrics)
}

fn main() {
    let db = build_database();
    let schema = db.schema();
    let item = schema.table_id("item").unwrap();
    let item_name = schema.column_id("item", "name").unwrap();
    let item_cid = schema.column_id("item", "cid").unwrap();
    let label = schema.column_id("category", "label").unwrap();

    // 1. Equality probe: the point restriction reads only matching rows.
    let eq_probe = SelectSpec {
        select: vec![SelectItem::column(item_name)],
        join: JoinTree::single(item),
        predicates: vec![Predicate::new(item_name, CmpOp::Eq, Value::text("item-1234"))],
        ..Default::default()
    };
    let (indexed, scan) = both_ways(&db, &eq_probe, "equality probe");
    assert!(indexed.rows_scanned < scan.rows_scanned, "point restriction must scan fewer rows");

    // 2. Join probe: the category side is joined index-nested-loop, so the
    //    build-side hash is never constructed.
    let join =
        JoinGraph::new(schema).steiner_tree(&[item, schema.table_id("category").unwrap()]).unwrap();
    let join_probe = SelectSpec {
        select: vec![SelectItem::column(item_name), SelectItem::column(label)],
        join: join.clone(),
        predicates: vec![Predicate::new(item_cid, CmpOp::Eq, Value::int(7))],
        ..Default::default()
    };
    let (indexed, scan) = both_ways(&db, &join_probe, "index-nested-loop join");
    assert!(indexed.rows_scanned < scan.rows_scanned, "INLJ must skip the build side");

    // 3. ORDER BY an indexed-but-unsorted column: streams off the index.
    let ordered = SelectSpec {
        select: vec![SelectItem::column(item_name)],
        join: JoinTree::single(item),
        order_by: Some(OrderSpec { key: OrderKey::Column(item_name), desc: false }),
        limit: Some(5),
        ..Default::default()
    };
    let (indexed, _) = both_ways(&db, &ordered, "ORDER BY … LIMIT 5");
    assert!(indexed.streamed, "ordered probe must stream from the index");
    assert!(indexed.rows_via_index > 0, "ordered probe must be served via the index");

    // 4. Impossible predicate: the planner proves emptiness and bails.
    let impossible = SelectSpec {
        select: vec![SelectItem::column(item_name)],
        join,
        predicates: vec![Predicate::new(item_name, CmpOp::Eq, Value::text("no such item"))],
        ..Default::default()
    };
    let (indexed, _) = both_ways(&db, &impossible, "impossible predicate");
    assert_eq!(indexed.rows_scanned, 0, "a provably empty probe must not scan");
    assert_eq!(indexed.probes_bailed_empty, 1);

    println!("index smoke test passed");
}
