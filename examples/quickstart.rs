//! Quickstart: the paper's motivating example (Example 2.1 / 2.2).
//!
//! Kevin wants "names of movies starring actors from before 1995, and those
//! after 2000, with corresponding actor names and years". The NLQ alone is
//! ambiguous; adding a table sketch query with two half-remembered facts
//! (Tom Hanks starred in Forrest Gump before 1995, Sandra Bullock starred in
//! Gravity sometime between 2010 and 2017) lets Duoquest prune the wrong
//! interpretations.
//!
//! Run with: `cargo run --example quickstart`

use duoquest::core::{Duoquest, DuoquestConfig, TableSketchQuery, TsqCell};
use duoquest::db::{ColumnDef, DataType, Database, Schema, TableDef, Value};
use duoquest::nlq::{extract_literals, HeuristicGuidance, Nlq};
use duoquest::sql::render_sql;
use std::sync::Arc;

fn build_movie_database() -> Database {
    let mut schema = Schema::new("movies");
    schema.add_table(TableDef::new(
        "actor",
        vec![
            ColumnDef::number("aid"),
            ColumnDef::text("name"),
            ColumnDef::number("birth_yr"),
            ColumnDef::text("gender"),
        ],
        Some(0),
    ));
    schema.add_table(TableDef::new(
        "movies",
        vec![ColumnDef::number("mid"), ColumnDef::text("name"), ColumnDef::number("year")],
        Some(0),
    ));
    schema.add_table(TableDef::new(
        "starring",
        vec![ColumnDef::number("aid"), ColumnDef::number("mid")],
        None,
    ));
    schema.add_foreign_key("starring", "aid", "actor", "aid").unwrap();
    schema.add_foreign_key("starring", "mid", "movies", "mid").unwrap();

    let mut db = Database::new(schema).unwrap();
    db.insert_all(
        "actor",
        vec![
            vec![Value::int(1), Value::text("Tom Hanks"), Value::int(1956), Value::text("male")],
            vec![
                Value::int(2),
                Value::text("Sandra Bullock"),
                Value::int(1964),
                Value::text("female"),
            ],
            vec![Value::int(3), Value::text("Brad Pitt"), Value::int(1963), Value::text("male")],
            vec![
                Value::int(4),
                Value::text("Meryl Streep"),
                Value::int(1949),
                Value::text("female"),
            ],
        ],
    )
    .unwrap();
    db.insert_all(
        "movies",
        vec![
            vec![Value::int(10), Value::text("Forrest Gump"), Value::int(1994)],
            vec![Value::int(11), Value::text("Gravity"), Value::int(2013)],
            vec![Value::int(12), Value::text("Fight Club"), Value::int(1999)],
            vec![Value::int(13), Value::text("The Post"), Value::int(2017)],
        ],
    )
    .unwrap();
    db.insert_all(
        "starring",
        vec![
            vec![Value::int(1), Value::int(10)],
            vec![Value::int(2), Value::int(11)],
            vec![Value::int(3), Value::int(12)],
            vec![Value::int(4), Value::int(13)],
        ],
    )
    .unwrap();
    db.rebuild_index();
    db
}

fn main() {
    let db = build_movie_database().into_shared();

    // 1. The natural language query, with literal values tagged (the front end
    //    does this via the autocomplete interface; here we extract them).
    let text = "Show names of movies starring actors from before 1995, and those after 2000, \
                with corresponding actor names, and years";
    let literals = extract_literals(text, Some(&db));
    let nlq = Nlq::with_literals(text, literals);
    println!("NLQ: {text}");
    println!(
        "Tagged literals: {:?}\n",
        nlq.literals.iter().map(|l| l.surface.clone()).collect::<Vec<_>>()
    );

    // 2. The optional table sketch query (paper Table 2), in the canonical
    //    column order used by the enumerator (actor.name, movies.name, movies.year).
    let tsq = TableSketchQuery::with_types(vec![DataType::Text, DataType::Text, DataType::Number])
        .with_tuple(vec![TsqCell::text("Tom Hanks"), TsqCell::text("Forrest Gump"), TsqCell::Empty])
        .with_tuple(vec![
            TsqCell::text("Sandra Bullock"),
            TsqCell::text("Gravity"),
            TsqCell::range(2010, 2017),
        ]);
    println!("TSQ: types = [text, text, number], 2 example tuples, not sorted, no limit\n");

    // 3. Synthesize with the purely lexical guidance model (no training data),
    //    on a parallel session streaming candidates as they survive
    //    verification — exactly what the paper's interactive front end shows.
    let engine = Duoquest::new(DuoquestConfig::fast().with_parallelism(0, 1));
    let model = Arc::new(HeuristicGuidance::new());

    println!("--- Dual specification (NLQ + TSQ), streamed ---");
    let stream = engine.session(Arc::clone(&db), nlq.clone(), model.clone()).with_tsq(tsq).stream();
    let mut streamed = 0usize;
    let mut stream = stream;
    for cand in stream.by_ref() {
        streamed += 1;
        if streamed <= 5 {
            println!(
                "  [{:>6.1} ms] conf {:.4}: {}",
                cand.emitted_at.as_secs_f64() * 1e3,
                cand.confidence,
                render_sql(&cand.spec, db.schema())
            );
        }
    }
    let dual = stream.finish();
    println!(
        "  [{} candidates ({streamed} streamed live), {} states expanded over {} rounds, \
         {} pruned by the TSQ/semantic cascade, probe cache {:.0}% hits]\n",
        dual.candidates.len(),
        dual.stats.expanded,
        dual.stats.rounds,
        dual.stats.total_pruned(),
        dual.stats.cache_hit_rate() * 100.0
    );

    println!("--- NLQ only (no TSQ) ---");
    let nlq_only = engine.session(Arc::clone(&db), nlq, model).run();
    println!(
        "  {} candidates survive without the TSQ (vs {} with it) — the sketch prunes the ambiguity.",
        nlq_only.candidates.len(),
        dual.candidates.len()
    );
}
