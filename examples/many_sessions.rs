//! Capacity smoke test for thread-free session driving: **512
//! mixed-priority requests** admitted live onto a **2-worker** pool — a
//! 256:1 live-session-to-thread ratio that would have required 512 driver
//! threads before the scheduler-resumable state machine. Asserts every
//! request completes, the service reports zero per-request driver threads,
//! and nothing is left behind in the pool.
//!
//! Run with: `cargo run --release --example many_sessions` (a CI smoke step).

use duoquest::core::DuoquestConfig;
use duoquest::nlq::NoisyOracleGuidance;
use duoquest::service::{
    PriorityClass, RequestStatus, ServiceConfig, SynthesisRequest, SynthesisService,
};
use duoquest::workloads::{spider, synthesize_tsq, TsqDetail};
use std::sync::Arc;
use std::time::Instant;

const REQUESTS: usize = 512;
const WORKERS: usize = 2;

fn main() {
    let dataset = spider::generate("many-sessions", 1, 2, 2, 2, 53);
    let service = SynthesisService::new(ServiceConfig {
        workers: WORKERS,
        max_live_sessions: REQUESTS, // every request runs live, none queued
        max_queued: 16,
        ..ServiceConfig::default()
    });
    // A light engine budget: the point is concurrency scale, not search depth.
    let config = DuoquestConfig {
        max_candidates: 5,
        max_expansions: 250,
        time_budget: None,
        ..Default::default()
    };

    let started = Instant::now();
    let tickets: Vec<_> = (0..REQUESTS)
        .map(|i| {
            let task = &dataset.tasks[i % dataset.tasks.len()];
            let db = dataset.database(task);
            let (gold, tsq) = synthesize_tsq(db, &task.gold, TsqDetail::Full, 2, i as u64);
            let model = NoisyOracleGuidance::new(gold, i as u64);
            let request = SynthesisRequest::new(Arc::clone(db), task.nlq.clone(), Arc::new(model))
                .with_tsq(tsq)
                .with_config(config.clone())
                .with_priority(PriorityClass::ALL[i % 3]);
            service.submit(request).expect("all requests admitted live")
        })
        .collect();
    let submitted_in = started.elapsed();

    let mid = service.stats();
    assert_eq!(mid.driver_threads, 0, "no per-request driver threads may exist");
    println!(
        "{REQUESTS} mixed-priority requests live on {WORKERS} pool workers \
         (submitted in {submitted_in:.1?}; live now: {}, driver threads: {})",
        mid.live_sessions, mid.driver_threads,
    );

    let mut completed = 0usize;
    let mut candidates = 0usize;
    for (i, ticket) in tickets.into_iter().enumerate() {
        let outcome = ticket.wait();
        assert_eq!(outcome.status, RequestStatus::Completed, "request {i} did not complete");
        assert!(!outcome.result.candidates.is_empty(), "request {i} found no candidates");
        completed += 1;
        candidates += outcome.result.candidates.len();
    }

    let stats = service.stats();
    assert_eq!(completed, REQUESTS);
    assert_eq!(stats.live_sessions, 0, "every slot must be released");
    assert_eq!(stats.scheduler.queue_depth, 0, "no units left behind");
    assert_eq!(stats.driver_threads, 0);
    assert!(
        stats.live_sessions_peak > WORKERS,
        "live sessions must stack beyond the worker count (peak {})",
        stats.live_sessions_peak
    );
    println!(
        "all {completed} completed in {:.1?} ({candidates} candidates); \
         live-session peak {} on {} worker threads — capacity no longer tracks thread count",
        started.elapsed(),
        stats.live_sessions_peak,
        stats.scheduler.workers,
    );
    for class in PriorityClass::ALL {
        let cl = stats.class(class);
        println!(
            "  {:<12} completed={:<4} ttfc p50={} p95={}",
            class.label(),
            cl.completed,
            cl.ttfc_p50.map(|d| format!("{d:.1?}")).unwrap_or_else(|| "-".into()),
            cl.ttfc_p95.map(|d| format!("{d:.1?}")).unwrap_or_else(|| "-".into()),
        );
    }

    // All 512 requests share the workload's single database, so concurrent
    // sessions that reach the same uncached probe collapse onto one leader
    // execution via the single-flight in-flight table.
    let db_stats = dataset.databases[0].cache_stats();
    let dup_rate = if db_stats.single_flight_lookups == 0 {
        0.0
    } else {
        db_stats.single_flight_hits as f64 / db_stats.single_flight_lookups as f64 * 100.0
    };
    println!(
        "  cross-session duplicate probes: {}/{} in-flight-routed misses collapsed onto \
         another session's leader ({dup_rate:.1}%; {} leader executions)",
        db_stats.single_flight_hits, db_stats.single_flight_lookups, db_stats.single_flight_leaders,
    );
}
