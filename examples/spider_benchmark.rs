//! Cross-domain benchmark scenario: generate a small synthetic Spider-like
//! split, run Duoquest, the NLI baseline and the PBE baseline on it, and print
//! a miniature version of the paper's Figure 10.
//!
//! Run with: `cargo run --example spider_benchmark`

use duoquest::baselines::{NliBaseline, SquidPbe};
use duoquest::core::{Duoquest, DuoquestConfig};
use duoquest::nlq::NoisyOracleGuidance;
use duoquest::workloads::{spider, synthesize_tsq, TsqDetail};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let dataset = spider::generate("example", 3, 12, 12, 6, 21);
    println!(
        "Generated {} databases and {} tasks ({:?} easy/medium/hard)\n",
        dataset.databases.len(),
        dataset.tasks.len(),
        dataset.difficulty_counts()
    );

    let config = DuoquestConfig {
        max_candidates: 15,
        max_expansions: 2_000,
        time_budget: Some(Duration::from_secs(2)),
        ..Default::default()
    }
    .with_parallelism(0, 1);
    let engine = Duoquest::new(config.clone());
    let nli = NliBaseline::new(config);
    let pbe = SquidPbe::new();

    let (mut dq_top1, mut dq_top10, mut nli_top1, mut nli_top10) = (0, 0, 0, 0);
    let (mut pbe_correct, mut pbe_unsupported) = (0, 0);
    for (i, task) in dataset.tasks.iter().enumerate() {
        let db = dataset.database(task);
        let (gold, tsq) = synthesize_tsq(db, &task.gold, TsqDetail::Full, 2, i as u64);
        let model = NoisyOracleGuidance::new(gold.clone(), i as u64);

        let dq = engine
            .session(Arc::clone(db), task.nlq.clone(), Arc::new(model.clone()))
            .with_tsq(tsq.clone())
            .run();
        if dq.in_top_k(&gold, 1) {
            dq_top1 += 1;
        }
        if dq.in_top_k(&gold, 10) {
            dq_top10 += 1;
        }
        let nl = nli.synthesize(db, &task.nlq, &model);
        if nl.in_top_k(&gold, 1) {
            nli_top1 += 1;
        }
        if nl.in_top_k(&gold, 10) {
            nli_top10 += 1;
        }
        if pbe.supports(db, &gold) {
            let outcome = pbe.run(db, &tsq);
            if pbe.correct_for(&outcome, &gold) {
                pbe_correct += 1;
            }
        } else {
            pbe_unsupported += 1;
        }
    }

    let total = dataset.tasks.len();
    let pct = |n: usize| 100.0 * n as f64 / total as f64;
    println!("System     Top-1          Top-10         Correct        Unsupported");
    println!(
        "Duoquest   {dq_top1:>3} ({:5.1}%)   {dq_top10:>3} ({:5.1}%)        -              0",
        pct(dq_top1),
        pct(dq_top10)
    );
    println!(
        "NLI        {nli_top1:>3} ({:5.1}%)   {nli_top10:>3} ({:5.1}%)        -              0",
        pct(nli_top1),
        pct(nli_top10)
    );
    println!(
        "PBE          -              -            {pbe_correct:>3} ({:5.1}%)   {pbe_unsupported:>3} ({:5.1}%)",
        pct(pbe_correct),
        pct(pbe_unsupported)
    );
    println!(
        "\n(The full evaluation lives in `cargo run -p duoquest-bench --bin run_all_experiments`.)"
    );
}
