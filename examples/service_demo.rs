//! Service demo: mixed interactive + batch + background traffic through the
//! multi-tenant [`SynthesisService`], exercising the full request lifecycle —
//! priority classes, one explicit cancellation, one deadline miss, and
//! admission-control shedding — then printing the per-class stats snapshot.
//!
//! Run with: `cargo run --release --example service_demo`

use duoquest::core::DuoquestConfig;
use duoquest::nlq::NoisyOracleGuidance;
use duoquest::service::{
    AdmissionError, PriorityClass, ServiceConfig, SynthesisRequest, SynthesisService, Ticket,
};
use duoquest::workloads::{spider, synthesize_tsq, Difficulty, TsqDetail};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn request_for(
    dataset: &spider::SpiderDataset,
    task: &spider::SpiderTask,
    seed: u64,
    config: DuoquestConfig,
) -> SynthesisRequest {
    let db = dataset.database(task);
    let (gold, tsq) = synthesize_tsq(db, &task.gold, TsqDetail::Full, 2, seed);
    let model = NoisyOracleGuidance::new(gold, seed);
    SynthesisRequest::new(Arc::clone(db), task.nlq.clone(), Arc::new(model))
        .with_tsq(tsq)
        .with_config(config)
}

fn report(name: &str, started: Instant, ticket: Ticket) {
    let outcome = ticket.wait();
    println!(
        "  {name:<24} {:<18} candidates={:<3} ttfc={} queue_wait={:.1?} (+{:.1?} total)",
        outcome.status.label(),
        outcome.result.candidates.len(),
        outcome.time_to_first_candidate.map(|d| format!("{:.1?}", d)).unwrap_or_else(|| "-".into()),
        outcome.queue_wait,
        started.elapsed(),
    );
}

fn main() {
    let dataset = spider::generate("service-demo", 2, 4, 4, 2, 41);
    let easy: Vec<_> = dataset.tasks.iter().filter(|t| t.level == Difficulty::Easy).collect();
    let hard = dataset
        .tasks
        .iter()
        .rev()
        .find(|t| t.level == Difficulty::Hard)
        .unwrap_or_else(|| dataset.tasks.last().expect("dataset has tasks"));

    // A small service: 2 pool workers, 2 requests live at a time, 3 queued.
    let service = SynthesisService::new(ServiceConfig {
        workers: 2,
        max_live_sessions: 2,
        max_queued: 3,
        ..ServiceConfig::default()
    });
    let started = Instant::now();

    let mut fast = DuoquestConfig::fast();
    fast.max_candidates = 10;
    // The heavy configuration keeps a long-running search alive so the demo
    // has something to cancel and a deadline to miss.
    let heavy = DuoquestConfig {
        max_expansions: usize::MAX,
        max_candidates: usize::MAX,
        max_states: 500_000,
        time_budget: Some(Duration::from_secs(10)),
        ..DuoquestConfig::default()
    };

    println!("submitting mixed traffic (2 workers, 2 live slots, queue of 3):");

    // Two batch crunchers grab the live slots...
    let batch_a = service
        .submit(request_for(&dataset, hard, 7, heavy.clone()).with_priority(PriorityClass::Batch))
        .expect("admitted");
    let to_cancel = service
        .submit(request_for(&dataset, hard, 11, heavy.clone()).with_priority(PriorityClass::Batch))
        .expect("admitted");

    // ...an interactive user and a background warming job queue behind them...
    let interactive =
        service.submit(request_for(&dataset, easy[0], 13, fast.clone())).expect("admitted");
    let background = service
        .submit(
            request_for(&dataset, easy[1 % easy.len()], 17, fast.clone())
                .with_priority(PriorityClass::Background),
        )
        .expect("admitted");

    // ...a latency-bound request whose 25ms deadline (measured from submit,
    // queue wait included) cannot be met behind two live batch crunchers...
    let doomed = service
        .submit(
            request_for(&dataset, easy[2 % easy.len()], 19, fast.clone())
                .with_deadline(Duration::from_millis(25)),
        )
        .expect("admitted");

    // ...and one more than the queue can hold: shed at admission.
    match service.submit(request_for(&dataset, easy[0], 23, fast.clone())) {
        Err(AdmissionError::Overloaded { live, queued }) => {
            println!("  overflow request shed at admission ({live} live, {queued} queued)");
        }
        other => println!("  unexpected admission result: {other:?}"),
    }

    // Cancel one batch cruncher mid-flight; its queued units are reaped.
    std::thread::sleep(Duration::from_millis(60));
    to_cancel.cancel();

    println!("outcomes:");
    report("interactive", started, interactive);
    report("background", started, background);
    report("deadline-25ms", started, doomed);
    report("batch (cancelled)", started, to_cancel);
    batch_a.cancel(); // wind the remaining cruncher down before the snapshot
    report("batch (wound down)", started, batch_a);

    let stats = service.stats();
    println!("\nper-class service stats:");
    for class in PriorityClass::ALL {
        let c = stats.class(class);
        println!(
            "  {:<12} submitted={} completed={} cancelled={} expired={} shed={} p50_ttfc={:?}",
            class.label(),
            c.submitted,
            c.completed,
            c.cancelled,
            c.expired,
            c.shed,
            c.ttfc_p50,
        );
    }
    println!("\nstats JSON:\n{}", stats.to_json());

    // Smoke assertions so CI fails loudly if the lifecycle regresses.
    assert_eq!(stats.class(PriorityClass::Interactive).completed, 1);
    assert!(
        stats.class(PriorityClass::Interactive).expired >= 1,
        "the 25ms-deadline request must expire"
    );
    assert!(stats.class(PriorityClass::Batch).cancelled >= 1, "the cancelled batch must count");
    assert_eq!(stats.class(PriorityClass::Interactive).shed, 1, "the overflow must be shed");
    assert_eq!(stats.live_sessions, 0, "all requests resolved");
    println!("\nservice demo OK");
}
