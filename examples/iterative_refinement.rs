//! Iterative refinement scenario (paper §2.4, Figure 1): the user first issues
//! only an NLQ, inspects the candidates, and then refines the specification by
//! adding example tuples to the TSQ until the desired query is ranked first.
//!
//! Run with: `cargo run --example iterative_refinement`

use duoquest::core::{Duoquest, DuoquestConfig, TableSketchQuery, TsqCell};
use duoquest::db::CmpOp;
use duoquest::db::DataType;
use duoquest::nlq::NoisyOracleGuidance;
use duoquest::sql::{render_sql, QueryBuilder};
use duoquest::workloads::MasDataset;
use std::sync::Arc;

fn main() {
    let mas = MasDataset::standard();
    let schema = mas.db.schema();

    // The user's intent: publications in SIGMOD after 2010 with their years.
    let gold = QueryBuilder::new(schema)
        .select("publication.title")
        .select("publication.year")
        .filter("conference.name", CmpOp::Eq, mas.conference_c.as_str())
        .filter("publication.year", CmpOp::Gt, 2010)
        .build()
        .unwrap();
    let gold = duoquest::workloads::canonicalize_select(&gold);
    println!("Desired query: {}\n", render_sql(&gold, schema));

    let nlq = duoquest::nlq::Nlq::with_literals(
        format!("titles and years of papers in \"{}\" after 2010", mas.conference_c),
        vec![
            duoquest::nlq::Literal::text(
                mas.conference_c.clone(),
                duoquest::db::Value::text(mas.conference_c.clone()),
            ),
            duoquest::nlq::Literal::number(2010.0),
        ],
    );
    // A mediocre guidance model makes the refinement visible.
    let model: Arc<dyn duoquest::nlq::GuidanceModel> = Arc::new(NoisyOracleGuidance::with_config(
        gold.clone(),
        6,
        duoquest::nlq::OracleConfig::default().scaled(0.8),
    ));
    let config = DuoquestConfig {
        max_expansions: 12_000,
        max_candidates: 40,
        time_budget: Some(std::time::Duration::from_secs(10)),
        ..Default::default()
    }
    .with_parallelism(0, 1);
    let engine = Duoquest::new(config);
    // Each refinement round is one synthesis session over the same shared
    // database; the probe cache warms up across rounds.
    let session = |tsq: Option<TableSketchQuery>| {
        let s = engine.session(Arc::clone(&mas.db), nlq.clone(), Arc::clone(&model));
        match tsq {
            Some(tsq) => s.with_tsq(tsq),
            None => s,
        }
    };

    // Round 1: NLQ only.
    let round1 = session(None).run();
    println!("Round 1 (NLQ only): gold rank = {:?}", round1.rank_of(&gold));

    // Round 2: add type annotations.
    let tsq = TableSketchQuery::with_types(vec![DataType::Text, DataType::Number]);
    let round2 = session(Some(tsq.clone())).run();
    println!("Round 2 (+ type annotations): gold rank = {:?}", round2.rank_of(&gold));

    // Round 3: add a half-remembered example tuple — a paper the user knows is
    // in the result, with only a rough idea of its year.
    let result = duoquest::db::execute(&mas.db, &gold).unwrap();
    let example_title = result.rows[0].0[0].as_text().unwrap_or("Paper 0019").to_string();
    let example_year = result.rows[0].0[1].as_number().unwrap_or(2015.0);
    let tsq = tsq.with_tuple(vec![
        TsqCell::text(example_title.clone()),
        TsqCell::range(example_year - 2.0, example_year + 2.0),
    ]);
    let round3 = session(Some(tsq)).run();
    println!(
        "Round 3 (+ example tuple \"{example_title}\", year in [2011, 2022]): gold rank = {:?}",
        round3.rank_of(&gold)
    );
    println!(
        "\nCandidates shrink as the specification grows: {} -> {} -> {}",
        round1.candidates.len(),
        round2.candidates.len(),
        round3.candidates.len()
    );
}
