//! Academic-search scenario: run one of the paper's user-study tasks (Table 7)
//! on the synthetic MAS database with the calibrated noisy-oracle guidance
//! model, and compare the dual-specification result with the NLI-only baseline.
//!
//! Run with: `cargo run --example academic_search`

use duoquest::baselines::NliBaseline;
use duoquest::core::{Duoquest, DuoquestConfig};
use duoquest::nlq::NoisyOracleGuidance;
use duoquest::sql::render_sql;
use duoquest::workloads::{mas_nli_tasks, synthesize_tsq, MasDataset, TsqDetail};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let mas = MasDataset::standard();
    let tasks = mas_nli_tasks(&mas);

    // Verification fan-out sized to the machine; paper-order exploration.
    let config = DuoquestConfig {
        max_candidates: 20,
        max_expansions: 3_000,
        time_budget: Some(Duration::from_secs(5)),
        ..Default::default()
    }
    .with_parallelism(0, 1);
    let engine = Duoquest::new(config.clone());
    let nli = NliBaseline::new(config);

    // Task B4: "List authors from organization R with more than N publications
    // and the number of publications for each author."
    let task = tasks.iter().find(|t| t.id == "B4").expect("task B4 exists");
    println!("Task {}: {}", task.id, task.description);
    println!("Gold SQL: {}\n", render_sql(&task.gold, mas.db.schema()));

    // Synthesize the TSQ the way a study participant would supply facts:
    // two example tuples drawn from the result, types, no sorting.
    let (gold, tsq) = synthesize_tsq(&mas.db, &task.gold, TsqDetail::Full, 2, 7);
    let model = NoisyOracleGuidance::new(gold.clone(), 7);

    let dual = engine
        .session(Arc::clone(&mas.db), task.nlq.clone(), Arc::new(model.clone()))
        .with_tsq(tsq)
        .run();
    println!("Duoquest (NLQ + TSQ):");
    match dual.rank_of(&gold) {
        Some(rank) => {
            println!("  gold query found at rank {rank} of {} candidates", dual.candidates.len())
        }
        None => println!("  gold query not found within the budget"),
    }
    for cand in dual.candidates.iter().take(3) {
        println!("    {:.4}  {}", cand.confidence, render_sql(&cand.spec, mas.db.schema()));
    }
    println!(
        "  [{} rounds, probe cache: {} hits / {} misses ({:.0}%)]",
        dual.stats.rounds,
        dual.stats.cache_hits,
        dual.stats.cache_misses,
        dual.stats.cache_hit_rate() * 100.0
    );

    let nli_result = nli.synthesize(&mas.db, &task.nlq, &model);
    println!("\nNLI baseline (NLQ only):");
    match nli_result.rank_of(&gold) {
        Some(rank) => {
            println!(
                "  gold query found at rank {rank} of {} candidates",
                nli_result.candidates.len()
            )
        }
        None => println!(
            "  gold query not found among {} candidates within the budget",
            nli_result.candidates.len()
        ),
    }

    // The autocomplete index backing the front end's literal tagging.
    println!("\nAutocomplete for \"Uni\": {:?}", mas.db.index().autocomplete("Uni", 5));
}
