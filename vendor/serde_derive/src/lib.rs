//! Offline stand-in for `serde_derive`.
//!
//! The container this repository builds in has no access to crates.io, so the
//! real serde cannot be vendored. Nothing in the workspace actually
//! serializes values yet — the `#[derive(Serialize, Deserialize)]` attributes
//! on the data model exist so downstream users can swap in the real serde by
//! changing one path in the workspace manifest. These derives therefore
//! expand to nothing.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
