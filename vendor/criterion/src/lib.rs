//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion 0.5 API the workspace's benches
//! use — `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, finish}`, `Bencher::iter`, `black_box` and the
//! `criterion_group!`/`criterion_main!` macros — with a simple wall-clock
//! measurement loop (fixed warm-up, then `sample_size` timed samples) and a
//! plain-text report on stdout. No statistical analysis, plots or saved
//! baselines; swap the workspace path dependency for the real criterion to
//! get those.

use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== bench group: {name} ==");
        BenchmarkGroup { _criterion: self, name, sample_size: 30 }
    }

    /// Register a stand-alone benchmark (group of one).
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function(name, f);
        group.finish();
        self
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measure one benchmark function.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        // Warm-up: one untimed run.
        let mut bencher = Bencher { elapsed: Duration::ZERO, iterations: 0 };
        f(&mut bencher);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher { elapsed: Duration::ZERO, iterations: 0 };
            f(&mut bencher);
            if bencher.iterations > 0 {
                samples.push(bencher.elapsed / bencher.iterations);
            }
        }
        samples.sort_unstable();
        if samples.is_empty() {
            println!("{}/{name}: no samples", self.name);
            return self;
        }
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{}/{name}: median {}  mean {}  (n = {})",
            self.name,
            fmt_duration(median),
            fmt_duration(mean),
            samples.len()
        );
        self
    }

    /// End the group (report output happens per bench; nothing left to do).
    pub fn finish(&mut self) {}
}

/// Times the closure passed to [`Bencher::iter`].
pub struct Bencher {
    elapsed: Duration,
    iterations: u32,
}

impl Bencher {
    /// Run and time one sample of the benchmarked routine.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Build a function that runs a list of benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running one or more `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        let mut runs = 0u32;
        group.sample_size(3).bench_function("add", |b| {
            b.iter(|| {
                runs += 1;
                black_box(1u64 + 2)
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(10)), "10 ns");
        assert!(fmt_duration(Duration::from_micros(15)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(15)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
