//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` *names* (marker traits plus no-op
//! derive macros) so the workspace's data-model annotations compile in an
//! environment without crates.io access. Swap this path dependency for the
//! real serde to enable actual serialization — no call site changes needed.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize` (lifetime elided: the
/// stand-in never borrows from an input buffer).
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};
