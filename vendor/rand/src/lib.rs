//! Offline stand-in for the `rand` crate (0.8-compatible API subset).
//!
//! The build environment has no crates.io access, so this crate provides the
//! slice of the `rand` 0.8 surface the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` and
//! `seq::SliceRandom::{choose, shuffle}` — backed by SplitMix64. All
//! workspace randomness is seeded, so determinism is preserved; only the
//! concrete pseudo-random streams differ from the real `rand`.

use std::ops::{Range, RangeInclusive};

/// Construction of a seeded generator (API-compatible subset of
/// `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the generator's full output range
/// (stand-in for sampling from `rand::distributions::Standard`).
pub trait SampleStandard {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Types drawable uniformly from a bounded range (stand-in for
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw from `[lo, hi)` when `inclusive` is false, `[lo, hi]` otherwise.
    /// Panics on an empty range, like `rand`.
    fn sample_between<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: Rng + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) + i128::from(inclusive);
                assert!(span > 0, "gen_range called with an empty range");
                (lo as i128 + (rng.next_u64() as u128 % span as u128) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
        assert!(if inclusive { lo <= hi } else { lo < hi }, "gen_range called with an empty range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

/// Ranges a value can be drawn from (stand-in for `rand`'s `SampleRange`).
/// The single blanket impl per range shape keeps type inference working at
/// call sites like `slice[rng.gen_range(0..slice.len())]`.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

/// The generator interface (API-compatible subset of `rand::Rng`).
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Draw a value of a `SampleStandard` type (e.g. `rng.gen::<f64>()`).
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draw a value uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Draw a boolean that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard seeded generator (SplitMix64; the real
    /// `rand::rngs::StdRng` is ChaCha12 — streams differ, determinism holds).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Slice sampling helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Random selection and shuffling over slices (subset of
    /// `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// A uniformly chosen element, or `None` for an empty slice.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_honored() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&x));
            let y: usize = rng.gen_range(3..=4);
            assert!((3..=4).contains(&y));
            let f: f64 = rng.gen_range(0.2..0.8);
            assert!((0.2..0.8).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left the slice sorted");
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
