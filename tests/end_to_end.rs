//! End-to-end integration tests spanning every crate: the motivating example
//! of the paper (Example 2.1/2.2) and dual-specification synthesis on the
//! MAS user-study tasks.

use duoquest::baselines::NliBaseline;
use duoquest::core::{Duoquest, DuoquestConfig, TableSketchQuery, TsqCell};
use duoquest::db::{execute, ColumnDef, DataType, Database, Schema, TableDef, Value};
use duoquest::nlq::{Literal, Nlq, NoisyOracleGuidance, OracleConfig};
use duoquest::sql::{parse_query, queries_equivalent, render_sql};
use duoquest::workloads::{mas_nli_tasks, synthesize_tsq, MasDataset, TsqDetail};
use std::time::Duration;

fn movie_db() -> Database {
    let mut schema = Schema::new("movies");
    schema.add_table(TableDef::new(
        "actor",
        vec![
            ColumnDef::number("aid"),
            ColumnDef::text("name"),
            ColumnDef::number("birth_yr"),
            ColumnDef::text("gender"),
        ],
        Some(0),
    ));
    schema.add_table(TableDef::new(
        "movies",
        vec![ColumnDef::number("mid"), ColumnDef::text("name"), ColumnDef::number("year")],
        Some(0),
    ));
    schema.add_table(TableDef::new(
        "starring",
        vec![ColumnDef::number("aid"), ColumnDef::number("mid")],
        None,
    ));
    schema.add_foreign_key("starring", "aid", "actor", "aid").unwrap();
    schema.add_foreign_key("starring", "mid", "movies", "mid").unwrap();
    let mut db = Database::new(schema).unwrap();
    db.insert_all(
        "actor",
        vec![
            vec![Value::int(1), Value::text("Tom Hanks"), Value::int(1956), Value::text("male")],
            vec![
                Value::int(2),
                Value::text("Sandra Bullock"),
                Value::int(1964),
                Value::text("female"),
            ],
            vec![Value::int(3), Value::text("Brad Pitt"), Value::int(1963), Value::text("male")],
        ],
    )
    .unwrap();
    db.insert_all(
        "movies",
        vec![
            vec![Value::int(10), Value::text("Forrest Gump"), Value::int(1994)],
            vec![Value::int(11), Value::text("Gravity"), Value::int(2013)],
            vec![Value::int(12), Value::text("Fight Club"), Value::int(1999)],
        ],
    )
    .unwrap();
    db.insert_all(
        "starring",
        vec![
            vec![Value::int(1), Value::int(10)],
            vec![Value::int(2), Value::int(11)],
            vec![Value::int(3), Value::int(12)],
        ],
    )
    .unwrap();
    db.rebuild_index();
    db
}

/// The paper's CQ3-style interpretation expressed against the movie schema:
/// movie names, actor names and years for movies before 1995 or after 2000.
fn motivating_gold(db: &Database) -> duoquest::db::SelectSpec {
    let sql = "SELECT movies.name, actor.name, movies.year FROM actor \
               JOIN starring ON actor.aid = starring.aid \
               JOIN movies ON starring.mid = movies.mid \
               WHERE movies.year < 1995 OR movies.year > 2000";
    duoquest::workloads::canonicalize_select(&parse_query(db.schema(), sql).unwrap())
}

#[test]
fn motivating_example_dual_specification() {
    let db = movie_db();
    let gold = motivating_gold(&db);

    // The TSQ of Table 2 (canonical column order: actor.name, movies.name, movies.year).
    let tsq = TableSketchQuery::with_types(vec![DataType::Text, DataType::Text, DataType::Number])
        .with_tuple(vec![TsqCell::text("Tom Hanks"), TsqCell::text("Forrest Gump"), TsqCell::Empty])
        .with_tuple(vec![
            TsqCell::text("Sandra Bullock"),
            TsqCell::text("Gravity"),
            TsqCell::range(2010, 2017),
        ]);

    let nlq = Nlq::with_literals(
        "Show names of movies starring actors from before 1995, and those after 2000, \
         with corresponding actor names, and years",
        vec![Literal::number(1995.0), Literal::number(2000.0)],
    );

    let config = DuoquestConfig {
        max_expansions: 12_000,
        max_candidates: 40,
        time_budget: Some(Duration::from_secs(20)),
        ..Default::default()
    };
    let engine = Duoquest::new(config);
    let model = NoisyOracleGuidance::with_config(gold.clone(), 5, OracleConfig::perfect());

    let result = engine.synthesize(&db, &nlq, Some(&tsq), &model);
    let rank = result.rank_of(&gold);
    assert!(rank.is_some(), "gold query not found; stats: {:?}", result.stats);
    assert!(rank.unwrap() <= 10, "gold rank too deep: {rank:?}");

    // The TSQ eliminates the CQ1 interpretation (gender = male), which cannot
    // produce the Sandra Bullock tuple.
    let cq1 = parse_query(
        db.schema(),
        "SELECT movies.name, actor.name, movies.year FROM actor \
         JOIN starring ON actor.aid = starring.aid JOIN movies ON starring.mid = movies.mid \
         WHERE actor.gender = 'male' AND movies.year < 1995",
    )
    .unwrap();
    assert!(result.candidates.iter().all(|c| !queries_equivalent(&c.spec, &cq1)));

    // Every returned candidate satisfies the TSQ (soundness): re-execute and check.
    for cand in &result.candidates {
        let rs = execute(&db, &cand.spec).unwrap();
        for (ti, _) in tsq.tuples.iter().enumerate() {
            assert!(
                rs.rows.iter().any(|r| tsq.row_satisfies_tuple(ti, &r.0)),
                "candidate {} violates the TSQ",
                render_sql(&cand.spec, db.schema())
            );
        }
    }
}

#[test]
fn mas_task_a1_solved_with_dual_specification_but_harder_for_nli() {
    let mas = MasDataset::standard();
    let tasks = mas_nli_tasks(&mas);
    let a1 = tasks.iter().find(|t| t.id == "A1").unwrap();

    let config = DuoquestConfig {
        max_candidates: 20,
        max_expansions: 8_000,
        time_budget: Some(Duration::from_secs(20)),
        ..Default::default()
    };

    let (gold, tsq) = synthesize_tsq(&mas.db, &a1.gold, TsqDetail::Full, 2, 3);
    let model = NoisyOracleGuidance::new(gold.clone(), 3);

    let duoquest = Duoquest::new(config.clone()).synthesize(&mas.db, &a1.nlq, Some(&tsq), &model);
    let nli = NliBaseline::new(config).synthesize(&mas.db, &a1.nlq, &model);

    let dq_rank = duoquest.rank_of(&gold);
    assert!(dq_rank.is_some(), "Duoquest failed A1: {:?}", duoquest.stats);
    // The dual specification never ranks the gold query worse than the NLI baseline.
    if let (Some(dq), Some(nl)) = (dq_rank, nli.rank_of(&gold)) {
        assert!(dq <= nl, "dual specification rank {dq} worse than NLI rank {nl}");
    }
}

#[test]
fn tsq_detail_monotonically_helps_on_a_simple_task() {
    let mas = MasDataset::standard();
    let tasks = mas_nli_tasks(&mas);
    let b1 = tasks.iter().find(|t| t.id == "B1").unwrap();

    let config = DuoquestConfig {
        max_candidates: 30,
        max_expansions: 8_000,
        time_budget: Some(Duration::from_secs(20)),
        ..Default::default()
    };
    let engine = Duoquest::new(config);

    let mut ranks = Vec::new();
    for detail in [TsqDetail::Full, TsqDetail::Minimal] {
        let (gold, tsq) = synthesize_tsq(&mas.db, &b1.gold, detail, 2, 11);
        let model = NoisyOracleGuidance::new(gold.clone(), 11);
        let result = engine.synthesize(&mas.db, &b1.nlq, Some(&tsq), &model);
        ranks.push(result.rank_of(&gold));
    }
    // The Full TSQ must find the query; the Minimal TSQ may or may not, but if
    // both find it the Full rank is at least as good.
    assert!(ranks[0].is_some());
    if let (Some(full), Some(minimal)) = (ranks[0], ranks[1]) {
        assert!(full <= minimal);
    }
}
