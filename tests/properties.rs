//! Property-based tests on the core data structures and invariants: value
//! comparison semantics, TSQ cell matching, executor algebraic invariants,
//! canonical equivalence, and confidence-score normalization.
//!
//! Each property is exercised over a seeded stream of randomly generated
//! inputs (64 cases per property, mirroring the original proptest
//! configuration). The generator is the workspace's deterministic `StdRng`,
//! so failures are reproducible from the printed case number.

use duoquest::core::TsqCell;
use duoquest::db::{
    execute, CmpOp, ColumnDef, Database, JoinTree, Predicate, Schema, SelectItem, SelectSpec,
    TableDef, Value,
};
use duoquest::nlq::guidance::normalize_scores;
use duoquest::sql::queries_equivalent;
use duoquest::workloads::canonicalize_select;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 64;

/// Run `body` for `CASES` seeded inputs, reporting the failing case number.
fn for_each_case(property: &str, mut body: impl FnMut(&mut StdRng)) {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xD00_F00D ^ (case * 2_654_435_761));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(panic) = result {
            eprintln!("property `{property}` failed on case {case}");
            std::panic::resume_unwind(panic);
        }
    }
}

fn small_db(rows: &[(String, f64)]) -> Database {
    let mut schema = Schema::new("t");
    schema.add_table(TableDef::new(
        "items",
        vec![ColumnDef::number("id"), ColumnDef::text("name"), ColumnDef::number("score")],
        Some(0),
    ));
    let mut db = Database::new(schema).unwrap();
    for (i, (name, score)) in rows.iter().enumerate() {
        db.insert(
            "items",
            vec![Value::int(i as i64), Value::text(name.clone()), Value::Number(*score)],
        )
        .unwrap();
    }
    db.rebuild_index();
    db
}

/// A short lowercase name, matching the original `[a-z]{1,8}` strategy.
fn gen_name(rng: &mut StdRng) -> String {
    let len = rng.gen_range(1..=8usize);
    (0..len).map(|_| (b'a' + rng.gen_range(0..26u8)) as char).collect()
}

/// 1..40 `(name, score)` rows with scores in ±1000, matching `rows_strategy`.
fn gen_rows(rng: &mut StdRng) -> Vec<(String, f64)> {
    let n = rng.gen_range(1..40usize);
    (0..n).map(|_| (gen_name(rng), rng.gen_range(-1000.0..1000.0))).collect()
}

#[test]
fn value_sql_eq_is_symmetric() {
    for_each_case("value_sql_eq_is_symmetric", |rng| {
        let (a, b) = (rng.gen_range(-1000.0..1000.0), rng.gen_range(-1000.0..1000.0));
        let (va, vb) = (Value::Number(a), Value::Number(b));
        assert_eq!(va.sql_eq(&vb), vb.sql_eq(&va));
    });
}

#[test]
fn value_total_cmp_is_antisymmetric() {
    for_each_case("value_total_cmp_is_antisymmetric", |rng| {
        let (va, vb) = (Value::text(gen_name(rng)), Value::text(gen_name(rng)));
        assert_eq!(va.total_cmp(&vb), vb.total_cmp(&va).reverse());
    });
}

#[test]
fn tsq_range_cell_contains_its_endpoints() {
    for_each_case("tsq_range_cell_contains_its_endpoints", |rng| {
        let lo = rng.gen_range(-1000.0..1000.0);
        let hi = lo + rng.gen_range(0.0..100.0);
        let cell = TsqCell::range(lo, hi);
        assert!(cell.matches(&Value::Number(lo)));
        assert!(cell.matches(&Value::Number(hi)));
        assert!(!cell.matches(&Value::Number(hi + 1.0)));
        assert!(!cell.matches(&Value::Number(lo - 1.0)));
    });
}

#[test]
fn executor_filter_never_grows_the_result() {
    for_each_case("executor_filter_never_grows_the_result", |rng| {
        let rows = gen_rows(rng);
        let threshold = rng.gen_range(-1000.0..1000.0);
        let db = small_db(&rows);
        let schema = db.schema();
        let name = schema.column_id("items", "name").unwrap();
        let score = schema.column_id("items", "score").unwrap();
        let base = SelectSpec {
            select: vec![SelectItem::column(name)],
            join: JoinTree::single(schema.table_id("items").unwrap()),
            ..Default::default()
        };
        let filtered = SelectSpec {
            predicates: vec![Predicate::new(score, CmpOp::Gt, Value::Number(threshold))],
            ..base.clone()
        };
        let all = execute(&db, &base).unwrap();
        let some = execute(&db, &filtered).unwrap();
        assert!(some.len() <= all.len());
        assert_eq!(all.len(), rows.len());
    });
}

#[test]
fn executor_limit_is_respected() {
    for_each_case("executor_limit_is_respected", |rng| {
        let rows = gen_rows(rng);
        let limit = rng.gen_range(0..50usize);
        let db = small_db(&rows);
        let schema = db.schema();
        let name = schema.column_id("items", "name").unwrap();
        let spec = SelectSpec {
            select: vec![SelectItem::column(name)],
            join: JoinTree::single(schema.table_id("items").unwrap()),
            limit: Some(limit),
            ..Default::default()
        };
        let rs = execute(&db, &spec).unwrap();
        assert!(rs.len() <= limit);
    });
}

#[test]
fn executor_order_by_sorts() {
    for_each_case("executor_order_by_sorts", |rng| {
        let rows = gen_rows(rng);
        let desc = rng.gen::<bool>();
        let db = small_db(&rows);
        let schema = db.schema();
        let score = schema.column_id("items", "score").unwrap();
        let spec = SelectSpec {
            select: vec![SelectItem::column(score)],
            join: JoinTree::single(schema.table_id("items").unwrap()),
            order_by: Some(duoquest::db::OrderSpec {
                key: duoquest::db::OrderKey::Column(score),
                desc,
            }),
            ..Default::default()
        };
        let rs = execute(&db, &spec).unwrap();
        let values: Vec<f64> = rs.rows.iter().filter_map(|r| r.0[0].as_number()).collect();
        for w in values.windows(2) {
            if desc {
                assert!(w[0] >= w[1]);
            } else {
                assert!(w[0] <= w[1]);
            }
        }
    });
}

#[test]
fn count_star_equals_row_count() {
    for_each_case("count_star_equals_row_count", |rng| {
        let rows = gen_rows(rng);
        let db = small_db(&rows);
        let schema = db.schema();
        let spec = SelectSpec {
            select: vec![SelectItem::count_star()],
            join: JoinTree::single(schema.table_id("items").unwrap()),
            ..Default::default()
        };
        let rs = execute(&db, &spec).unwrap();
        assert_eq!(rs.rows[0].0[0].as_number(), Some(rows.len() as f64));
    });
}

#[test]
fn canonical_equivalence_is_reflexive_and_order_insensitive() {
    for_each_case("canonical_equivalence_is_reflexive_and_order_insensitive", |rng| {
        let rows = gen_rows(rng);
        let db = small_db(&rows);
        let schema = db.schema();
        let name = schema.column_id("items", "name").unwrap();
        let score = schema.column_id("items", "score").unwrap();
        let spec = SelectSpec {
            select: vec![SelectItem::column(score), SelectItem::column(name)],
            join: JoinTree::single(schema.table_id("items").unwrap()),
            predicates: vec![
                Predicate::new(score, CmpOp::Gt, Value::int(0)),
                Predicate::new(name, CmpOp::Eq, Value::text("alpha")),
            ],
            ..Default::default()
        };
        assert!(queries_equivalent(&spec, &spec));
        let mut shuffled = spec.clone();
        shuffled.select.reverse();
        shuffled.predicates.reverse();
        assert!(queries_equivalent(&spec, &shuffled));
        let canon = canonicalize_select(&spec);
        assert!(queries_equivalent(&spec, &canon));
    });
}

#[test]
fn normalized_scores_form_a_distribution() {
    for_each_case("normalized_scores_form_a_distribution", |rng| {
        let n = rng.gen_range(1..20usize);
        let raw: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..10.0)).collect();
        let scores = normalize_scores(&raw);
        let sum: f64 = scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(scores.iter().all(|s| *s >= 0.0 && *s <= 1.0 + 1e-12));
    });
}

#[test]
fn group_by_partitions_rows() {
    // Deterministic companion check: the grouped COUNT(*) values sum to the row count.
    let rows: Vec<(String, f64)> =
        ["a", "b", "a", "c", "b", "a"].iter().map(|s| (s.to_string(), 1.0)).collect();
    let db = small_db(&rows);
    let schema = db.schema();
    let name = schema.column_id("items", "name").unwrap();
    let spec = SelectSpec {
        select: vec![SelectItem::column(name), SelectItem::count_star()],
        join: JoinTree::single(schema.table_id("items").unwrap()),
        group_by: vec![name],
        ..Default::default()
    };
    let rs = execute(&db, &spec).unwrap();
    let total: f64 = rs.rows.iter().filter_map(|r| r.0[1].as_number()).sum();
    assert_eq!(total, rows.len() as f64);
    assert_eq!(rs.len(), 3);
}
