//! Property-based tests (proptest) on the core data structures and invariants:
//! value comparison semantics, TSQ cell matching, executor algebraic
//! invariants, canonical equivalence, and confidence-score normalization.

use duoquest::core::TsqCell;
use duoquest::db::{
    execute, CmpOp, ColumnDef, Database, JoinTree, Predicate, Schema, SelectItem, SelectSpec,
    TableDef, Value,
};
use duoquest::nlq::guidance::normalize_scores;
use duoquest::sql::queries_equivalent;
use duoquest::workloads::canonicalize_select;
use proptest::prelude::*;

fn small_db(rows: &[(String, f64)]) -> Database {
    let mut schema = Schema::new("t");
    schema.add_table(TableDef::new(
        "items",
        vec![ColumnDef::number("id"), ColumnDef::text("name"), ColumnDef::number("score")],
        Some(0),
    ));
    let mut db = Database::new(schema).unwrap();
    for (i, (name, score)) in rows.iter().enumerate() {
        db.insert("items", vec![Value::int(i as i64), Value::text(name.clone()), Value::Number(*score)])
            .unwrap();
    }
    db.rebuild_index();
    db
}

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-z]{1,8}"
}

fn rows_strategy() -> impl Strategy<Value = Vec<(String, f64)>> {
    prop::collection::vec((name_strategy(), -1000.0..1000.0f64), 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn value_sql_eq_is_symmetric(a in -1000.0..1000.0f64, b in -1000.0..1000.0f64) {
        let (va, vb) = (Value::Number(a), Value::Number(b));
        prop_assert_eq!(va.sql_eq(&vb), vb.sql_eq(&va));
    }

    #[test]
    fn value_total_cmp_is_antisymmetric(a in name_strategy(), b in name_strategy()) {
        let (va, vb) = (Value::text(a), Value::text(b));
        prop_assert_eq!(va.total_cmp(&vb), vb.total_cmp(&va).reverse());
    }

    #[test]
    fn tsq_range_cell_contains_its_endpoints(lo in -1000.0..1000.0f64, width in 0.0..100.0f64) {
        let hi = lo + width;
        let cell = TsqCell::range(lo, hi);
        prop_assert!(cell.matches(&Value::Number(lo)));
        prop_assert!(cell.matches(&Value::Number(hi)));
        prop_assert!(!cell.matches(&Value::Number(hi + 1.0)));
        prop_assert!(!cell.matches(&Value::Number(lo - 1.0)));
    }

    #[test]
    fn executor_filter_never_grows_the_result(rows in rows_strategy(), threshold in -1000.0..1000.0f64) {
        let db = small_db(&rows);
        let schema = db.schema();
        let name = schema.column_id("items", "name").unwrap();
        let score = schema.column_id("items", "score").unwrap();
        let base = SelectSpec {
            select: vec![SelectItem::column(name)],
            join: JoinTree::single(schema.table_id("items").unwrap()),
            ..Default::default()
        };
        let filtered = SelectSpec {
            predicates: vec![Predicate::new(score, CmpOp::Gt, Value::Number(threshold))],
            ..base.clone()
        };
        let all = execute(&db, &base).unwrap();
        let some = execute(&db, &filtered).unwrap();
        prop_assert!(some.len() <= all.len());
        prop_assert_eq!(all.len(), rows.len());
    }

    #[test]
    fn executor_limit_is_respected(rows in rows_strategy(), limit in 0usize..50) {
        let db = small_db(&rows);
        let schema = db.schema();
        let name = schema.column_id("items", "name").unwrap();
        let spec = SelectSpec {
            select: vec![SelectItem::column(name)],
            join: JoinTree::single(schema.table_id("items").unwrap()),
            limit: Some(limit),
            ..Default::default()
        };
        let rs = execute(&db, &spec).unwrap();
        prop_assert!(rs.len() <= limit);
    }

    #[test]
    fn executor_order_by_sorts(rows in rows_strategy(), desc in any::<bool>()) {
        let db = small_db(&rows);
        let schema = db.schema();
        let score = schema.column_id("items", "score").unwrap();
        let spec = SelectSpec {
            select: vec![SelectItem::column(score)],
            join: JoinTree::single(schema.table_id("items").unwrap()),
            order_by: Some(duoquest::db::OrderSpec {
                key: duoquest::db::OrderKey::Column(score),
                desc,
            }),
            ..Default::default()
        };
        let rs = execute(&db, &spec).unwrap();
        let values: Vec<f64> = rs.rows.iter().filter_map(|r| r.0[0].as_number()).collect();
        for w in values.windows(2) {
            if desc {
                prop_assert!(w[0] >= w[1]);
            } else {
                prop_assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn count_star_equals_row_count(rows in rows_strategy()) {
        let db = small_db(&rows);
        let schema = db.schema();
        let spec = SelectSpec {
            select: vec![SelectItem::count_star()],
            join: JoinTree::single(schema.table_id("items").unwrap()),
            ..Default::default()
        };
        let rs = execute(&db, &spec).unwrap();
        prop_assert_eq!(rs.rows[0].0[0].as_number(), Some(rows.len() as f64));
    }

    #[test]
    fn canonical_equivalence_is_reflexive_and_order_insensitive(rows in rows_strategy()) {
        let db = small_db(&rows);
        let schema = db.schema();
        let name = schema.column_id("items", "name").unwrap();
        let score = schema.column_id("items", "score").unwrap();
        let spec = SelectSpec {
            select: vec![SelectItem::column(score), SelectItem::column(name)],
            join: JoinTree::single(schema.table_id("items").unwrap()),
            predicates: vec![
                Predicate::new(score, CmpOp::Gt, Value::int(0)),
                Predicate::new(name, CmpOp::Eq, Value::text("alpha")),
            ],
            ..Default::default()
        };
        prop_assert!(queries_equivalent(&spec, &spec));
        let mut shuffled = spec.clone();
        shuffled.select.reverse();
        shuffled.predicates.reverse();
        prop_assert!(queries_equivalent(&spec, &shuffled));
        let canon = canonicalize_select(&spec);
        prop_assert!(queries_equivalent(&spec, &canon));
    }

    #[test]
    fn normalized_scores_form_a_distribution(raw in prop::collection::vec(0.0..10.0f64, 1..20)) {
        let scores = normalize_scores(&raw);
        let sum: f64 = scores.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(scores.iter().all(|s| *s >= 0.0 && *s <= 1.0 + 1e-12));
    }
}

#[test]
fn group_by_partitions_rows() {
    // Deterministic companion check: the grouped COUNT(*) values sum to the row count.
    let rows: Vec<(String, f64)> =
        ["a", "b", "a", "c", "b", "a"].iter().map(|s| (s.to_string(), 1.0)).collect();
    let db = small_db(&rows);
    let schema = db.schema();
    let name = schema.column_id("items", "name").unwrap();
    let spec = SelectSpec {
        select: vec![SelectItem::column(name), SelectItem::count_star()],
        join: JoinTree::single(schema.table_id("items").unwrap()),
        group_by: vec![name],
        ..Default::default()
    };
    let rs = execute(&db, &spec).unwrap();
    let total: f64 = rs.rows.iter().filter_map(|r| r.0[1].as_number()).sum();
    assert_eq!(total, rows.len() as f64);
    assert_eq!(rs.len(), 3);
}
