//! Integration tests for the streaming operator executor: limit pushdown
//! short-circuits scans, partitioned parallel joins stay byte-identical, and
//! the budget-aware probe cache upgrades truncated entries in place.

use duoquest::db::{
    execute_with, ColumnDef, Database, ExecOptions, JoinGraph, RunCacheCounters, Schema,
    SelectItem, SelectSpec, TableDef, Value,
};

/// `left` (2000 rows) ⋈ `right` (40 keys × 25 rows): the joined relation has
/// 50 000 rows, dwarfing both base tables.
fn fanout_db() -> Database {
    let mut s = Schema::new("fanout");
    s.add_table(TableDef::new("right", vec![ColumnDef::number("k"), ColumnDef::number("v")], None));
    s.add_table(TableDef::new(
        "left",
        vec![ColumnDef::number("id"), ColumnDef::number("k")],
        Some(0),
    ));
    s.add_foreign_key("left", "k", "right", "k").unwrap();
    let mut db = Database::new(s).unwrap();
    db.insert_all("right", (0..1000).map(|i| vec![Value::int(i % 40), Value::int(i)])).unwrap();
    db.insert_all("left", (0..2000).map(|i| vec![Value::int(i), Value::int(i % 40)])).unwrap();
    db.rebuild_index();
    db
}

fn join_spec(db: &Database) -> SelectSpec {
    let schema = db.schema();
    let join = JoinGraph::new(schema)
        .steiner_tree(&[schema.table_id("left").unwrap(), schema.table_id("right").unwrap()])
        .unwrap();
    SelectSpec {
        select: vec![
            SelectItem::column(schema.column_id("left", "id").unwrap()),
            SelectItem::column(schema.column_id("right", "v").unwrap()),
        ],
        join,
        ..Default::default()
    }
}

#[test]
fn limit_one_probe_scans_under_ten_percent_of_materializing_executor() {
    let db = fanout_db();
    let mut probe = join_spec(&db);
    probe.limit = Some(1);

    let streaming = execute_with(&db, &probe, &ExecOptions::default()).unwrap();
    let materialized =
        execute_with(&db, &probe, &ExecOptions { limit_pushdown: false, ..ExecOptions::default() })
            .unwrap();

    assert_eq!(streaming.result, materialized.result, "strategies must agree on the rows");
    assert!(
        streaming.metrics.rows_scanned * 10 < materialized.metrics.rows_scanned,
        "LIMIT 1 must scan <10% of the materializing executor: {} vs {}",
        streaming.metrics.rows_scanned,
        materialized.metrics.rows_scanned
    );
}

#[test]
fn join_partition_counts_are_byte_identical_at_database_level() {
    let db = fanout_db();
    let spec = join_spec(&db);
    // Force the partitioned parallel join even on this small fixture.
    db.set_parallel_join_threshold(1);

    db.set_join_partitions(1);
    let baseline = duoquest::db::execute(&db, &spec).unwrap();
    assert_eq!(baseline.len(), 50_000);
    for partitions in [2usize, 4] {
        db.set_join_partitions(partitions);
        let parallel = duoquest::db::execute(&db, &spec).unwrap();
        assert_eq!(
            baseline, parallel,
            "{partitions}-partition join diverged from the single-threaded join"
        );
    }
}

#[test]
fn probe_cache_upgrades_truncated_entries() {
    let db = fanout_db();
    let spec = {
        let schema = db.schema();
        SelectSpec {
            select: vec![SelectItem::column(schema.column_id("left", "id").unwrap())],
            join: duoquest::db::JoinTree::single(schema.table_id("left").unwrap()),
            ..Default::default()
        }
    };
    let counters = RunCacheCounters::default();

    // Truncated probe: two rows answer "more than one row?".
    let first = db.execute_cached_budgeted(&spec, Some(2), &counters).unwrap();
    assert_eq!(first.rows.len(), 2);
    assert!(!first.exact);
    // A smaller budget is served by the truncated entry.
    let second = db.execute_cached_budgeted(&spec, Some(1), &counters).unwrap();
    assert!(!second.exact);
    assert_eq!(counters.snapshot(), (1, 1), "second probe must hit the cache");
    // The unbudgeted probe re-executes and upgrades the entry to exact...
    let full = db.execute_cached_budgeted(&spec, None, &counters).unwrap();
    assert!(full.exact);
    assert_eq!(full.rows.len(), 2000);
    assert_eq!(counters.snapshot(), (1, 2));
    // ...after which every budget is a hit.
    let third = db.execute_cached_budgeted(&spec, Some(3), &counters).unwrap();
    assert!(third.exact);
    assert_eq!(counters.snapshot(), (2, 2));

    let (scanned, _) = counters.scan_snapshot();
    assert!(scanned > 0, "cache misses must report executor scans");
}

#[test]
fn synthesis_run_surfaces_scan_counters() {
    use duoquest::core::{Duoquest, DuoquestConfig};
    use duoquest::nlq::NoisyOracleGuidance;
    use duoquest::workloads::{spider, synthesize_tsq, TsqDetail};
    use std::sync::Arc;

    let dataset = spider::generate("scan-counters", 1, 2, 2, 2, 7);
    let task = &dataset.tasks[0];
    let db = dataset.database(task);
    let (gold, tsq) = synthesize_tsq(db, &task.gold, TsqDetail::Full, 2, 7);
    let model = NoisyOracleGuidance::new(gold, 7);
    let config = DuoquestConfig { max_candidates: 5, time_budget: None, ..Default::default() };
    let result = Duoquest::new(config)
        .session(Arc::clone(db), task.nlq.clone(), Arc::new(model))
        .with_tsq(tsq)
        .run();
    assert!(
        result.stats.rows_scanned > 0,
        "verification probes must report executor scans: {:?}",
        result.stats
    );
}
