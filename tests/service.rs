//! The serving layer's headline guarantees, exercised at the workspace
//! level on the synthetic Spider workload:
//!
//! * **priority**: an interactive request submitted while batch requests own
//!   the pool gets its first candidate before any batch request completes;
//! * **cancellation**: cancelling one request reaps its queued scheduler
//!   units without perturbing (or dropping candidates of) uncancelled
//!   requests;
//! * **drop-cancels-work**: dropping a `Ticket` or a `CandidateStream`
//!   cancels the underlying session and lets the shared pool go idle;
//! * **deadlines**: a request past its deadline resolves with the best
//!   candidates found so far, flagged `deadline_exceeded`.

use duoquest::core::{
    DuoquestConfig, EnumerationStats, SessionScheduler, SynthesisResult, SynthesisSession,
};
use duoquest::nlq::NoisyOracleGuidance;
use duoquest::service::{
    json::Json, AdmissionError, PriorityClass, RequestStatus, ServiceConfig, SynthesisRequest,
    SynthesisService,
};
use duoquest::workloads::{spider, synthesize_tsq, Difficulty, TsqDetail};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn workload() -> spider::SpiderDataset {
    spider::generate("service", 1, 2, 2, 2, 7)
}

/// A heavy configuration that keeps a session grinding for (tens of)
/// seconds: effectively unbounded except for a generous wall-clock budget.
fn heavy_config() -> DuoquestConfig {
    DuoquestConfig {
        max_expansions: usize::MAX,
        max_candidates: usize::MAX,
        max_states: 2_000_000,
        time_budget: Some(Duration::from_secs(30)),
        ..Default::default()
    }
}

fn request_for(
    dataset: &spider::SpiderDataset,
    task: &spider::SpiderTask,
    seed: u64,
    config: DuoquestConfig,
) -> SynthesisRequest {
    let db = dataset.database(task);
    let (gold, tsq) = synthesize_tsq(db, &task.gold, TsqDetail::Full, 2, seed);
    let model = NoisyOracleGuidance::new(gold, seed);
    SynthesisRequest::new(Arc::clone(db), task.nlq.clone(), Arc::new(model))
        .with_tsq(tsq)
        .with_config(config)
}

/// The same task as [`request_for`], but as a private-pool session — the
/// determinism ground truth.
fn session_for(
    dataset: &spider::SpiderDataset,
    task: &spider::SpiderTask,
    seed: u64,
    config: DuoquestConfig,
) -> SynthesisSession {
    let db = dataset.database(task);
    let (gold, tsq) = synthesize_tsq(db, &task.gold, TsqDetail::Full, 2, seed);
    let model = NoisyOracleGuidance::new(gold, seed);
    SynthesisSession::new(Arc::clone(db), task.nlq.clone(), Arc::new(model))
        .with_tsq(tsq)
        .with_config(config)
}

fn hard_task(dataset: &spider::SpiderDataset) -> &spider::SpiderTask {
    dataset
        .tasks
        .iter()
        .rev()
        .find(|t| t.level == Difficulty::Hard)
        .unwrap_or_else(|| dataset.tasks.last().expect("workload has tasks"))
}

fn ranking(result: &SynthesisResult) -> Vec<(String, f64)> {
    result.candidates.iter().map(|c| (format!("{:?}", c.spec), c.confidence)).collect()
}

/// The acceptance criterion: an interactive-class request submitted while 8
/// batch-class requests are live on a 1-worker pool gets its first candidate
/// before any batch request completes.
#[test]
fn interactive_first_candidate_beats_every_live_batch_completion() {
    let dataset = workload();
    let hard = hard_task(&dataset);
    let fast_task = dataset.tasks.first().expect("workload has tasks");

    let service = SynthesisService::new(ServiceConfig {
        workers: 1,
        max_live_sessions: 16, // all 9 requests live simultaneously
        max_queued: 16,
        ..ServiceConfig::default()
    });

    // 8 batch requests saturate the single worker with heavy enumeration.
    let mut batch: Vec<_> = (0..8)
        .map(|i| {
            service
                .submit(
                    request_for(&dataset, hard, 11 + i, heavy_config())
                        .with_priority(PriorityClass::Batch),
                )
                .expect("admitted")
        })
        .collect();
    std::thread::sleep(Duration::from_millis(50));
    if batch.iter_mut().any(|t| t.is_finished()) {
        // On a machine fast enough to finish the heavy search in <50ms there
        // is no contention window to measure.
        eprintln!("SKIP: a batch request finished in <50ms; no contention window");
        for t in batch {
            t.cancel();
            let _ = t.wait();
        }
        return;
    }

    let mut fast_config = DuoquestConfig::fast();
    fast_config.max_candidates = 3;
    let mut interactive =
        service.submit(request_for(&dataset, fast_task, 13, fast_config)).expect("admitted");
    let first = interactive.next_timeout(Duration::from_secs(20));
    assert!(first.is_some(), "interactive request starved: no candidate within 20s");

    // At the moment the interactive candidate arrived, no batch request may
    // have completed (their heavy searches run for much longer than the
    // interactive request's first rounds).
    for (i, ticket) in batch.iter_mut().enumerate() {
        assert!(
            ticket.try_wait().is_none(),
            "batch request {i} completed before the interactive request's first candidate"
        );
    }

    let outcome = interactive.wait();
    assert_eq!(outcome.status, RequestStatus::Completed);
    assert!(outcome.time_to_first_candidate.is_some());
    let stats = service.stats();
    assert!(stats.class(PriorityClass::Interactive).ttfc_p50.is_some());
    assert_eq!(stats.class(PriorityClass::Batch).live, 8, "batch requests still grinding");

    // Wind the batch requests down (dropping the tickets cancels them).
    drop(batch);
    drop(service);
}

/// Cancelling one request must not re-order or drop candidates of a
/// concurrent uncancelled request — its emission stays byte-identical to a
/// solo private-pool run.
#[test]
fn cancellation_leaves_other_requests_byte_identical() {
    let dataset = workload();
    let hard = hard_task(&dataset);
    let observed_task = dataset.tasks.first().expect("workload has tasks");
    let mut config = DuoquestConfig::fast();
    config.time_budget = None;
    config.max_candidates = 20;

    // Ground truth: the observed task alone on a private sequential session.
    let solo = session_for(&dataset, observed_task, 77, config.clone()).run();

    let service = SynthesisService::new(ServiceConfig {
        workers: 1,
        max_live_sessions: 8,
        max_queued: 8,
        ..ServiceConfig::default()
    });
    let victim = service
        .submit(request_for(&dataset, hard, 31, heavy_config()).with_priority(PriorityClass::Batch))
        .expect("admitted");
    std::thread::sleep(Duration::from_millis(30));
    let observed =
        service.submit(request_for(&dataset, observed_task, 77, config)).expect("admitted");
    // Cancel the victim while the observed request is mid-flight.
    std::thread::sleep(Duration::from_millis(20));
    victim.cancel();
    let victim_outcome = victim.wait();
    assert_eq!(victim_outcome.status, RequestStatus::Cancelled);

    let outcome = observed.wait();
    assert_eq!(outcome.status, RequestStatus::Completed);
    assert_eq!(
        ranking(&solo),
        ranking(&outcome.result),
        "cancelling a concurrent request perturbed an uncancelled request's candidates"
    );

    // The pool must drain completely once both requests resolved.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = service.stats();
        if stats.live_sessions == 0 && stats.scheduler.queue_depth == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "pool did not go idle: {stats:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(service.stats().class(PriorityClass::Batch).cancelled, 1);
}

/// Satellite regression: dropping a `Ticket` cancels its session and reaps
/// its queued scheduler units — the pool goes idle instead of grinding
/// through abandoned work.
#[test]
fn dropping_a_ticket_reaps_work_and_pool_goes_idle() {
    let dataset = workload();
    let hard = hard_task(&dataset);
    let service = SynthesisService::new(ServiceConfig {
        workers: 1,
        max_live_sessions: 4,
        max_queued: 4,
        ..ServiceConfig::default()
    });
    let mut ticket = service
        .submit(request_for(&dataset, hard, 43, heavy_config()).with_priority(PriorityClass::Batch))
        .expect("admitted");
    // Let it take the worker and build up queued round chunks, then abandon.
    let _ = ticket.next_timeout(Duration::from_secs(10));
    drop(ticket);

    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = service.stats();
        if stats.live_sessions == 0 && stats.scheduler.queue_depth == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "dropped ticket leaked enumeration work: {stats:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(service.stats().class(PriorityClass::Batch).cancelled, 1);
}

/// Satellite regression at the session level: dropping a `CandidateStream`
/// attached to a shared pool cancels the session and the pool goes idle.
#[test]
fn dropping_a_candidate_stream_lets_the_pool_go_idle() {
    let dataset = workload();
    let hard = hard_task(&dataset);
    let pool = SessionScheduler::new(1);
    let db = dataset.database(hard);
    let (gold, tsq) = synthesize_tsq(db, &hard.gold, TsqDetail::Full, 2, 47);
    let mut stream = SynthesisSession::new(
        Arc::clone(db),
        hard.nlq.clone(),
        Arc::new(NoisyOracleGuidance::new(gold, 47)),
    )
    .with_tsq(tsq)
    .with_config(heavy_config())
    .with_scheduler(pool.handle())
    .stream();
    let _ = stream.next_timeout(Duration::from_secs(10));
    drop(stream);

    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = pool.stats();
        if stats.live_sessions == 0 && stats.queue_depth == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "dropped stream leaked enumeration work: {stats:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A mid-run deadline resolves with the best candidates found so far,
/// flagged `deadline_exceeded` — the any-k contract.
#[test]
fn deadline_mid_run_returns_best_so_far_flagged() {
    let dataset = workload();
    let hard = hard_task(&dataset);
    let service = SynthesisService::new(ServiceConfig {
        workers: 1,
        max_live_sessions: 2,
        max_queued: 2,
        ..ServiceConfig::default()
    });
    let started = Instant::now();
    let ticket = service
        .submit(
            request_for(&dataset, hard, 53, heavy_config())
                .with_priority(PriorityClass::Batch)
                .with_deadline(Duration::from_millis(300)),
        )
        .expect("admitted");
    let outcome = ticket.wait();
    let elapsed = started.elapsed();
    assert_eq!(outcome.status, RequestStatus::DeadlineExceeded);
    assert!(outcome.result.stats.deadline_exceeded);
    assert!(!outcome.result.stats.cancelled);
    // The run must actually stop near the deadline, not at the 30s budget.
    assert!(elapsed < Duration::from_secs(15), "deadline did not cut the run: took {elapsed:?}");
    assert_eq!(service.stats().class(PriorityClass::Batch).expired, 1);
}

/// The engine's own `time_budget` cutting a search is a normal completion
/// mode — it must not be reported as a deadline miss (or tick `expired`)
/// for a request that set no service deadline.
#[test]
fn engine_time_budget_completes_rather_than_expires() {
    let dataset = workload();
    let hard = hard_task(&dataset);
    let service = SynthesisService::new(ServiceConfig {
        workers: 1,
        max_live_sessions: 2,
        max_queued: 2,
        ..ServiceConfig::default()
    });
    let mut config = heavy_config();
    config.time_budget = Some(Duration::from_millis(200)); // engine budget, no service deadline
    let outcome = service
        .submit(request_for(&dataset, hard, 59, config).with_priority(PriorityClass::Batch))
        .expect("admitted")
        .wait();
    assert_eq!(outcome.status, RequestStatus::Completed);
    assert!(outcome.result.stats.deadline_exceeded, "the engine budget did cut the run");
    let stats = service.stats();
    assert_eq!(stats.class(PriorityClass::Batch).expired, 0);
    assert_eq!(stats.class(PriorityClass::Batch).completed, 1);
}

/// A queued request's deadline is enforced while every live slot stays busy:
/// the scheduler's tick resolves it at the deadline (even with the pool
/// saturated) instead of whenever a slot happens to free.
#[test]
fn queued_deadline_is_enforced_while_slots_stay_busy() {
    let dataset = workload();
    let hard = hard_task(&dataset);
    let service = SynthesisService::new(ServiceConfig {
        workers: 1,
        max_live_sessions: 1,
        max_queued: 2,
        ..ServiceConfig::default()
    });
    // A long-running request owns the only live slot for ~30s.
    let hog = service
        .submit(request_for(&dataset, hard, 67, heavy_config()).with_priority(PriorityClass::Batch))
        .expect("admitted");
    let started = Instant::now();
    let doomed = service
        .submit(
            request_for(&dataset, hard, 68, heavy_config())
                .with_deadline(Duration::from_millis(100)),
        )
        .expect("admitted");
    let outcome = doomed.wait();
    let elapsed = started.elapsed();
    assert_eq!(outcome.status, RequestStatus::DeadlineExceeded);
    assert!(
        elapsed < Duration::from_secs(5),
        "queued deadline was only honored when the slot freed: {elapsed:?}"
    );
    assert!(outcome.time_to_first_candidate.is_none(), "the request never ran");
    hog.cancel();
    let _ = hog.wait();
}

/// Cancelling a queued ticket resolves it promptly (via the scheduler's
/// tick), not when a live slot happens to free.
#[test]
fn cancelled_queued_ticket_resolves_promptly() {
    let dataset = workload();
    let hard = hard_task(&dataset);
    let service = SynthesisService::new(ServiceConfig {
        workers: 1,
        max_live_sessions: 1,
        max_queued: 2,
        ..ServiceConfig::default()
    });
    let hog = service
        .submit(request_for(&dataset, hard, 71, heavy_config()).with_priority(PriorityClass::Batch))
        .expect("admitted");
    let queued = service.submit(request_for(&dataset, hard, 72, heavy_config())).expect("admitted");
    let started = Instant::now();
    queued.cancel();
    let outcome = queued.wait();
    assert_eq!(outcome.status, RequestStatus::Cancelled);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "cancelled queued ticket waited for the slot: {:?}",
        started.elapsed()
    );
    hog.cancel();
    let _ = hog.wait();
}

/// A guidance model that panics mid-scoring: the panic unwinds inside a
/// `RoundDriver::step` on a pool worker, but the service must survive with
/// its capacity (and its workers) intact.
struct PanickingGuidance;

impl duoquest::nlq::GuidanceModel for PanickingGuidance {
    fn score(
        &self,
        _ctx: &duoquest::nlq::GuidanceContext<'_>,
        _candidates: &[duoquest::nlq::Choice],
    ) -> Vec<f64> {
        panic!("injected guidance failure");
    }

    fn name(&self) -> &str {
        "panicking"
    }
}

/// A panicking request must free its live slot (no capacity wedge): queued
/// work still gets promoted and later submits still complete. Its own
/// ticket's `wait` panics, per the documented contract.
#[test]
fn panicking_request_frees_its_slot() {
    let dataset = workload();
    let task = dataset.tasks.first().expect("workload has tasks");
    let service = SynthesisService::new(ServiceConfig {
        workers: 1,
        max_live_sessions: 1,
        max_queued: 2,
        ..ServiceConfig::default()
    });
    let db = dataset.database(task);
    let poisoned = service
        .submit(
            SynthesisRequest::new(Arc::clone(db), task.nlq.clone(), Arc::new(PanickingGuidance))
                .with_config(DuoquestConfig::fast()),
        )
        .expect("admitted");
    // Queued behind the poisoned request: must be promoted once the panic
    // frees the slot, and complete normally.
    let mut config = DuoquestConfig::fast();
    config.max_candidates = 3;
    let healthy = service.submit(request_for(&dataset, task, 73, config)).expect("admitted");
    let waited = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| poisoned.wait()));
    assert!(waited.is_err(), "the poisoned request's outcome cannot be delivered");
    let outcome = healthy.wait();
    assert_eq!(outcome.status, RequestStatus::Completed);
    assert_eq!(service.stats().live_sessions, 0, "the panicked request leaked its slot");
}

/// Satellite: a worker panic's payload is captured into the poisoned
/// request's observability record — the flight-recorder trace is flagged
/// anomalous, its terminal event carries the panic message, and
/// `trace_json` (the `GET /trace/<id>` body) serves it for post-mortems.
#[test]
fn panic_payload_lands_in_the_flight_recorder() {
    let dataset = workload();
    let task = dataset.tasks.first().expect("workload has tasks");
    let service = SynthesisService::new(ServiceConfig {
        workers: 1,
        max_live_sessions: 2,
        max_queued: 2,
        ..ServiceConfig::default()
    });
    let db = dataset.database(task);
    let poisoned = service
        .submit(
            SynthesisRequest::new(Arc::clone(db), task.nlq.clone(), Arc::new(PanickingGuidance))
                .with_config(DuoquestConfig::fast()),
        )
        .expect("admitted");
    let id = poisoned.id();
    let waited = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| poisoned.wait()));
    assert!(waited.is_err(), "the poisoned request's outcome cannot be delivered");

    // The trace is pushed before the outcome channel drops (which is what
    // wakes the panicking wait), so it is already retained here.
    let trace = service.trace(id).expect("poisoned request left no flight-recorder trace");
    assert!(trace.is_anomalous(), "a panic must flag its trace anomalous");
    let terminal = trace
        .events()
        .into_iter()
        .find(|e| e.name == duoquest::obs::TERMINAL_EVENT)
        .expect("terminal event recorded");
    let detail = terminal.detail.expect("terminal event carries the panic payload");
    assert!(
        detail.contains("injected guidance failure"),
        "panic payload missing from terminal event: {detail:?}"
    );
    let json = service.trace_json(id).expect("trace JSON served");
    assert!(json.contains("injected guidance failure"), "payload missing from trace JSON");
}

/// Satellite: a session panicking **mid-`step()`** — the panic fires inside
/// the round-driver's phase 1, on a pool worker, not on any per-request
/// thread — poisons only itself: concurrent live sessions complete with
/// byte-identical output, the worker survives, and the admission slot frees.
#[test]
fn panic_mid_step_poisons_only_its_own_session() {
    let dataset = workload();
    let task = dataset.tasks.first().expect("workload has tasks");
    let mut config = DuoquestConfig::fast();
    config.time_budget = None;
    config.max_candidates = 20;
    let solo = session_for(&dataset, task, 79, config.clone()).run();

    let service = SynthesisService::new(ServiceConfig {
        workers: 1,
        max_live_sessions: 8,
        max_queued: 8,
        ..ServiceConfig::default()
    });
    let db = dataset.database(task);
    // Three healthy sessions live alongside the poisoned one, all sharing
    // the single worker that unwinds the panic.
    let healthy: Vec<_> = (0..3)
        .map(|_| service.submit(request_for(&dataset, task, 79, config.clone())).expect("admitted"))
        .collect();
    let poisoned = service
        .submit(
            SynthesisRequest::new(Arc::clone(db), task.nlq.clone(), Arc::new(PanickingGuidance))
                .with_config(DuoquestConfig::fast()),
        )
        .expect("admitted");
    let waited = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| poisoned.wait()));
    assert!(waited.is_err(), "the poisoned request's outcome cannot be delivered");
    for ticket in healthy {
        let outcome = ticket.wait();
        assert_eq!(outcome.status, RequestStatus::Completed);
        assert_eq!(
            ranking(&solo),
            ranking(&outcome.result),
            "a concurrent panic perturbed a healthy session's candidates"
        );
    }
    // The pool worker survived the unwind and the service is fully drained.
    let after = service.submit(request_for(&dataset, task, 79, config)).expect("admitted").wait();
    assert_eq!(after.status, RequestStatus::Completed);
    let stats = service.stats();
    assert_eq!(stats.live_sessions, 0, "the panicked session leaked its slot");
    assert_eq!(stats.driver_threads, 0);
    assert_eq!(stats.scheduler.queue_depth, 0);
}

/// Satellite: the hand-rolled `EnumerationStats::to_json` round-trips
/// through the service crate's JSON reader.
#[test]
fn enumeration_stats_json_round_trips() {
    let dataset = workload();
    let task = dataset.tasks.first().expect("workload has tasks");
    let mut config = DuoquestConfig::fast();
    config.time_budget = None;
    let pool = SessionScheduler::new(2);
    let result = session_for(&dataset, task, 61, config).with_scheduler(pool.handle()).run();
    let stats: &EnumerationStats = &result.stats;
    let parsed = Json::parse(&stats.to_json()).expect("stats JSON parses");
    assert_eq!(parsed.get("expanded").and_then(Json::as_u64), Some(stats.expanded as u64));
    assert_eq!(parsed.get("emitted").and_then(Json::as_u64), Some(stats.emitted as u64));
    assert_eq!(parsed.get("cache_hits").and_then(Json::as_u64), Some(stats.cache_hits));
    assert_eq!(parsed.get("rows_scanned").and_then(Json::as_u64), Some(stats.rows_scanned));
    assert_eq!(parsed.get("index_lookups").and_then(Json::as_u64), Some(stats.index_lookups));
    assert!(stats.index_lookups > 0, "a verifier run must exercise the index path");
    assert_eq!(parsed.get("rows_via_index").and_then(Json::as_u64), Some(stats.rows_via_index));
    assert_eq!(
        parsed.get("probes_bailed_empty").and_then(Json::as_u64),
        Some(stats.probes_bailed_empty)
    );
    assert_eq!(parsed.get("cancelled").and_then(Json::as_bool), Some(false));
    assert_eq!(parsed.get("deadline_exceeded").and_then(Json::as_bool), Some(false));
    assert_eq!(
        parsed.get("elapsed_us").and_then(Json::as_u64),
        Some(stats.elapsed.as_micros() as u64)
    );
    // Stage timings nest per stage label.
    let clauses =
        parsed.get("stage_timings").and_then(|t| t.get("clauses")).expect("clauses stage present");
    assert!(clauses.get("calls").and_then(Json::as_u64).unwrap_or(0) > 0);
    // The run went through the shared pool, so the scheduler member is an
    // object mirroring the run stats.
    let run = stats.scheduler.expect("shared-pool run records scheduler stats");
    let sched = parsed.get("scheduler").expect("scheduler member");
    assert_eq!(sched.get("pool_workers").and_then(Json::as_u64), Some(run.pool_workers as u64));
    assert_eq!(sched.get("units_submitted").and_then(Json::as_u64), Some(run.units_submitted));
}

/// Slot-leak edge the DST conservation oracle checks, pinned directly:
/// dropping a `Ticket` whose request is still queued *and* already past its
/// deadline frees the admission slot exactly once. Whichever path resolves
/// it first — the deadline sweep or the drop — the other must be a no-op:
/// the queue gains exactly one opening, and the class records exactly one
/// resolution (expired or cancelled, never both).
#[test]
fn dropping_a_queued_past_deadline_ticket_frees_the_slot_once() {
    let dataset = workload();
    let hard = hard_task(&dataset);
    let service = SynthesisService::new(ServiceConfig {
        workers: 1,
        max_live_sessions: 1,
        max_queued: 1,
        ..ServiceConfig::default()
    });
    let hog = service
        .submit(request_for(&dataset, hard, 81, heavy_config()).with_priority(PriorityClass::Batch))
        .expect("admitted");
    let doomed = service
        .submit(
            request_for(&dataset, hard, 82, heavy_config())
                .with_priority(PriorityClass::Background)
                .with_deadline(Duration::from_millis(100)),
        )
        .expect("queued");
    // The single queue slot is occupied.
    let full = service.submit(
        request_for(&dataset, hard, 83, heavy_config()).with_priority(PriorityClass::Background),
    );
    assert!(matches!(full, Err(AdmissionError::Overloaded { .. })), "{full:?}");

    // Let the deadline lapse, then drop the ticket without ever waiting on
    // it. Depending on tick timing the sweep may already have expired the
    // request or the drop may cancel it — both orders must free the slot
    // exactly once.
    std::thread::sleep(Duration::from_millis(400));
    drop(doomed);

    // Exactly one opening: one request gets in (dropped-ticket resolution
    // is asynchronous, so poll), the next is shed again.
    let started = Instant::now();
    let readmitted = loop {
        match service.submit(
            request_for(&dataset, hard, 84, heavy_config())
                .with_priority(PriorityClass::Background),
        ) {
            Ok(ticket) => break ticket,
            Err(AdmissionError::Overloaded { .. }) => {
                assert!(
                    started.elapsed() < Duration::from_secs(10),
                    "queue slot never freed after drop"
                );
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(other) => panic!("unexpected admission error: {other:?}"),
        }
    };
    let second = service.submit(
        request_for(&dataset, hard, 85, heavy_config()).with_priority(PriorityClass::Background),
    );
    assert!(
        matches!(second, Err(AdmissionError::Overloaded { .. })),
        "slot was freed more than once: {second:?}"
    );

    // The doomed request resolved exactly once, as expired or cancelled.
    let background = |s: duoquest::service::ServiceStats| *s.class(PriorityClass::Background);
    let resolved = loop {
        let class = background(service.stats());
        if class.expired + class.cancelled >= 1 {
            break class;
        }
        assert!(started.elapsed() < Duration::from_secs(10), "doomed request never resolved");
        std::thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(
        resolved.expired + resolved.cancelled,
        1,
        "double resolution: expired={} cancelled={}",
        resolved.expired,
        resolved.cancelled
    );

    readmitted.cancel();
    let _ = readmitted.wait();
    hog.cancel();
    let _ = hog.wait();
    let class = background(service.stats());
    assert_eq!(class.queued, 0);
    assert_eq!(class.live, 0);
}
