//! Churn behaviour of the probe cache's segment-rotation eviction
//! (ROADMAP open item, resolved in this PR): under a byte budget far below
//! the workload's total probe volume, the cache must keep serving the hot
//! set instead of refusing admission the way the old byte-cap design did.

use duoquest::core::{Duoquest, DuoquestConfig};
use duoquest::nlq::NoisyOracleGuidance;
use duoquest::workloads::{spider, synthesize_tsq, TsqDetail};
use std::sync::Arc;

/// Synthesis over the spider workload with a deliberately tiny cache budget:
/// the run's working set no longer fits, so generations must rotate — and
/// the hit rate of a warm rerun must stay above 90% anyway, because entries
/// the verifier keeps re-probing are promoted across rotations.
#[test]
fn hit_rate_survives_churn_on_spider_workload() {
    let dataset = spider::generate("churn", 1, 2, 2, 2, 21);
    let config = DuoquestConfig {
        max_candidates: 20,
        max_expansions: 1_500,
        time_budget: None,
        ..Default::default()
    };
    let engine = Duoquest::new(config);

    let run_all = |label: &str| {
        let mut hits = 0u64;
        let mut misses = 0u64;
        for (i, task) in dataset.tasks.iter().enumerate() {
            let db = dataset.database(task);
            let (gold, tsq) = synthesize_tsq(db, &task.gold, TsqDetail::Full, 2, 50 + i as u64);
            let model = NoisyOracleGuidance::new(gold, 50 + i as u64);
            let result = engine
                .session(Arc::clone(db), task.nlq.clone(), Arc::new(model))
                .with_tsq(tsq)
                .run();
            hits += result.stats.cache_hits;
            misses += result.stats.cache_misses;
        }
        let rate = hits as f64 / (hits + misses).max(1) as f64;
        println!("{label}: {hits} hits / {misses} misses = {:.1}%", rate * 100.0);
        rate
    };

    // Squeeze the budget so the workload's probe volume forces rotations.
    for db in &dataset.databases {
        db.clear_probe_cache();
        db.set_probe_cache_capacity(64 * 1024);
    }
    let cold = run_all("cold, churning");
    let warm = run_all("warm, churning");

    let stats: Vec<_> = dataset.databases.iter().map(|db| db.cache_stats()).collect();
    let rotations: u64 = stats.iter().map(|s| s.rotations).sum();
    assert!(
        rotations > 0,
        "the budget must be small enough to force rotation, or this test checks nothing: {stats:?}"
    );
    for s in &stats {
        assert!(s.bytes <= 64 * 1024, "retention must respect the budget: {s:?}");
    }

    // The regression guard: even while rotating, the within-run hot set is
    // served from cache. The old admission-stop design collapsed here —
    // once the cap filled, later probes were never cached again.
    assert!(
        cold > 0.9,
        "hit rate under churn fell to {:.1}% (rotation eviction regressed?)",
        cold * 100.0
    );
    assert!(warm >= cold - 0.05, "warm rerun should not be worse than the cold run");
}
