//! Fairness of the shared batch session scheduler: many sessions on one
//! pool must share it in weighted round-robin order, so a cheap interactive
//! session is served while an expensive one is still grinding — one session
//! must never starve the rest.

use duoquest::core::{DuoquestConfig, SessionScheduler, SynthesisSession};
use duoquest::nlq::NoisyOracleGuidance;
use duoquest::workloads::{spider, synthesize_tsq, TsqDetail};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A slow session and a fast session sharing one single-worker pool: the
/// fast session's first candidate must arrive before the slow session
/// completes. (With FIFO whole-session scheduling the fast session would
/// wait behind every queued unit of the slow one.)
#[test]
fn fast_session_is_served_while_slow_session_runs() {
    let dataset = spider::generate("fairness", 1, 2, 2, 2, 7);
    // The slow session: a hard task with inflated budgets and no deadline.
    let slow_task = dataset
        .tasks
        .iter()
        .rev()
        .find(|t| t.level == duoquest::workloads::Difficulty::Hard)
        .unwrap_or_else(|| dataset.tasks.last().expect("workload has tasks"));
    // The fast session: the cheapest task with tiny budgets.
    let fast_task = dataset.tasks.first().expect("workload has tasks");

    let pool = SessionScheduler::new(1);

    let db = dataset.database(slow_task);
    let (slow_gold, slow_tsq) = synthesize_tsq(db, &slow_task.gold, TsqDetail::Full, 2, 11);
    // Effectively unbounded except for the (generous) wall-clock budget, so
    // even on much faster hardware the slow session cannot complete before
    // the fast session is served — the test's precondition.
    let slow_config = DuoquestConfig {
        max_expansions: usize::MAX,
        max_candidates: usize::MAX,
        max_states: 2_000_000,
        time_budget: Some(Duration::from_secs(30)),
        ..Default::default()
    };
    let slow_session = SynthesisSession::new(
        Arc::clone(db),
        slow_task.nlq.clone(),
        Arc::new(NoisyOracleGuidance::new(slow_gold, 11)),
    )
    .with_tsq(slow_tsq)
    .with_config(slow_config)
    .with_scheduler(pool.handle());

    let fast_db = dataset.database(fast_task);
    let (fast_gold, fast_tsq) = synthesize_tsq(fast_db, &fast_task.gold, TsqDetail::Full, 2, 13);
    let mut fast_config = DuoquestConfig::fast();
    fast_config.max_candidates = 3;
    let fast_session = SynthesisSession::new(
        Arc::clone(fast_db),
        fast_task.nlq.clone(),
        Arc::new(NoisyOracleGuidance::new(fast_gold, 13)),
    )
    .with_tsq(fast_tsq)
    .with_config(fast_config)
    .with_scheduler(pool.handle());

    // Start the slow session and let it saturate the single worker. If the
    // machine is so fast that the slow session exhausts its search space
    // before contention can even be established, there is nothing to measure
    // — skip rather than report a spurious failure (on the 1-CPU reference
    // box the slow session runs for well over a second).
    let slow_stream = slow_session.stream();
    std::thread::sleep(Duration::from_millis(50));
    if slow_stream.is_finished() {
        eprintln!("SKIP: slow session finished in <50ms on this machine; no contention window");
        let _ = slow_stream.finish();
        return;
    }

    // Now ask for the fast session's first candidate under contention. This
    // is the unconditional starvation check: under FIFO whole-session
    // scheduling the fast session would sit behind the slow session's entire
    // multi-second queue instead of being interleaved.
    let started = Instant::now();
    let mut fast_stream = fast_session.stream();
    let first = fast_stream.next_timeout(Duration::from_secs(20));
    let time_to_first = started.elapsed();
    assert!(first.is_some(), "fast session starved: no candidate within 20s");

    // The headline fairness assertion: the fast session produced output
    // while the slow session was still running.
    assert!(
        !slow_stream.is_finished(),
        "slow session finished (in under {time_to_first:?}) before the fast session's first \
         candidate — the workload no longer exercises contention"
    );

    let fast_result = fast_stream.finish();
    assert!(!fast_result.candidates.is_empty());
    // Both sessions ran on the shared pool (not private fallbacks).
    let run = fast_result.stats.scheduler.expect("fast session ran on the shared pool");
    assert_eq!(run.pool_workers, 1);
    assert!(
        run.live_sessions_peak >= 2 || run.units_submitted == 0,
        "fast session should have observed the slow session sharing the pool: {run:?}"
    );

    slow_stream.stop();
    let slow_result = slow_stream.finish();
    assert!(slow_result.stats.scheduler.is_some());
}
