//! Determinism of the parallel synthesis core: for a fixed configuration the
//! candidate set and ranking must be a pure function of the inputs — never of
//! the worker count or thread scheduling — on a fixed synthetic Spider
//! workload.

use duoquest::core::{Duoquest, DuoquestConfig, EmissionPolicy, SessionScheduler, SynthesisResult};
use duoquest::nlq::NoisyOracleGuidance;
use duoquest::service::{
    PriorityClass, RequestStatus, ServiceConfig, SynthesisRequest, SynthesisService,
};
use duoquest::workloads::{spider, synthesize_tsq, TsqDetail};
use std::sync::Arc;

/// A reduced, fixed workload: 1 database, 6 tasks across difficulties.
fn workload() -> spider::SpiderDataset {
    spider::generate("determinism", 1, 2, 2, 2, 33)
}

fn base_config() -> DuoquestConfig {
    DuoquestConfig {
        max_candidates: 20,
        max_expansions: 1_500,
        // No wall-clock budget: timeouts are the one intentionally
        // non-deterministic cut-off.
        time_budget: None,
        ..Default::default()
    }
}

fn run_task(
    dataset: &spider::SpiderDataset,
    task: &spider::SpiderTask,
    seed: u64,
    config: &DuoquestConfig,
) -> SynthesisResult {
    let db = dataset.database(task);
    let (gold, tsq) = synthesize_tsq(db, &task.gold, TsqDetail::Full, 2, seed);
    let model = NoisyOracleGuidance::new(gold, seed);
    Duoquest::new(config.clone())
        .session(Arc::clone(db), task.nlq.clone(), Arc::new(model))
        .with_tsq(tsq)
        .run()
}

/// Candidate list rendered as comparable `(structure, confidence)` pairs in
/// final ranking order.
fn ranking(result: &SynthesisResult) -> Vec<(String, f64)> {
    result.candidates.iter().map(|c| (format!("{:?}", c.spec), c.confidence)).collect()
}

#[test]
fn parallel_session_equals_sequential_path_per_task() {
    let dataset = workload();
    let sequential = base_config(); // workers = 1, beam = 1
    let parallel = base_config().with_parallelism(4, 1);
    for (i, task) in dataset.tasks.iter().enumerate() {
        let seq = run_task(&dataset, task, 100 + i as u64, &sequential);
        let par = run_task(&dataset, task, 100 + i as u64, &parallel);
        assert_eq!(
            ranking(&seq),
            ranking(&par),
            "task {} diverged between sequential and parallel sessions",
            task.id
        );
        assert_eq!(seq.stats.emitted, par.stats.emitted, "task {}", task.id);
        assert_eq!(seq.stats.expanded, par.stats.expanded, "task {}", task.id);
        assert_eq!(seq.stats.total_pruned(), par.stats.total_pruned(), "task {}", task.id);
    }
}

/// Run one task through a session attached to `pool` (or a private pool when
/// `None`).
fn run_task_on(
    dataset: &spider::SpiderDataset,
    task: &spider::SpiderTask,
    seed: u64,
    config: &DuoquestConfig,
    pool: Option<&SessionScheduler>,
) -> SynthesisResult {
    let db = dataset.database(task);
    let (gold, tsq) = synthesize_tsq(db, &task.gold, TsqDetail::Full, 2, seed);
    let model = NoisyOracleGuidance::new(gold, seed);
    let mut session = Duoquest::new(config.clone())
        .session(Arc::clone(db), task.nlq.clone(), Arc::new(model))
        .with_tsq(tsq);
    if let Some(pool) = pool {
        session = session.with_scheduler(pool.handle());
    }
    session.run()
}

/// The tentpole guarantee of the shared batch scheduler: any number of
/// concurrent sessions (2–8 here) interleaved over one shared pool each emit
/// a candidate sequence identical to their single-session run, for any pool
/// worker count.
#[test]
fn interleaved_sessions_on_shared_pool_match_single_session_runs() {
    let dataset = Arc::new(workload());
    let config = base_config();
    // Ground truth: each task run alone on a private sequential session.
    let solo: Vec<_> = dataset
        .tasks
        .iter()
        .enumerate()
        .map(|(i, task)| ranking(&run_task_on(&dataset, task, 300 + i as u64, &config, None)))
        .collect();

    for pool_workers in [1usize, 2, 4] {
        for concurrency in [2usize, 4, 8] {
            let pool = Arc::new(SessionScheduler::new(pool_workers));
            // `concurrency` sessions run truly interleaved: each drives its
            // own round loop on its own thread while sharing the pool's
            // workers (tasks are reused cyclically to reach 8 sessions).
            let handles: Vec<_> = (0..concurrency)
                .map(|s| {
                    let dataset = Arc::clone(&dataset);
                    let pool = Arc::clone(&pool);
                    let config = config.clone();
                    let task_idx = s % dataset.tasks.len();
                    std::thread::spawn(move || {
                        let task = &dataset.tasks[task_idx];
                        let result = run_task_on(
                            &dataset,
                            task,
                            300 + task_idx as u64,
                            &config,
                            Some(&pool),
                        );
                        (task_idx, ranking(&result))
                    })
                })
                .collect();
            for handle in handles {
                let (task_idx, shared_ranking) = handle.join().expect("session thread panicked");
                assert_eq!(
                    solo[task_idx], shared_ranking,
                    "task {task_idx} diverged with {concurrency} sessions on a \
                     {pool_workers}-worker shared pool"
                );
            }
            let stats = pool.stats();
            assert_eq!(stats.live_sessions, 0, "sessions must deregister");
            assert_eq!(stats.queue_depth, 0, "no work may be left behind");
        }
    }
}

/// The executor-level analogue of the worker-count guarantee: the number of
/// hash partitions a join is split across (and whether the partitioned
/// parallel join triggers at all) must never change the emitted candidates.
#[test]
fn join_partition_counts_leave_emission_byte_identical() {
    let dataset = workload();
    let config = base_config();
    let solo: Vec<_> = dataset
        .tasks
        .iter()
        .enumerate()
        .map(|(i, task)| ranking(&run_task(&dataset, task, 400 + i as u64, &config)))
        .collect();

    for partitions in [1usize, 2, 4] {
        for (i, task) in dataset.tasks.iter().enumerate() {
            let db = dataset.database(task);
            // Force the parallel join onto every probe, however small.
            db.set_parallel_join_threshold(1);
            db.set_join_partitions(partitions);
            db.clear_probe_cache();
            let result = run_task(&dataset, task, 400 + i as u64, &config);
            assert_eq!(
                solo[i],
                ranking(&result),
                "task {} diverged with {partitions} join partitions",
                task.id
            );
        }
    }
}

/// The index-access analogue of the worker-count guarantee: whether probes
/// run through ordered secondary indexes (index-nested-loop joins, range
/// restrictions, ordered index scans, selectivity-driven join ordering) or
/// through pure scans must never change the emitted candidates — across
/// shared-pool sizes {1, 2, 4}, join-partition counts {1, 2, 4}, and the
/// service at all three priority classes.
#[test]
fn index_access_toggle_leaves_emission_byte_identical() {
    let dataset = Arc::new(workload());
    let config = base_config();
    // Ground truth: index access enabled (the default), private session.
    let solo: Vec<_> = dataset
        .tasks
        .iter()
        .enumerate()
        .map(|(i, task)| ranking(&run_task(&dataset, task, 700 + i as u64, &config)))
        .collect();

    // Pure-scan execution across join-partition counts, with the parallel
    // join forced onto every probe.
    for partitions in [1usize, 2, 4] {
        for (i, task) in dataset.tasks.iter().enumerate() {
            let db = dataset.database(task);
            db.set_index_access(false);
            db.set_parallel_join_threshold(1);
            db.set_join_partitions(partitions);
            db.clear_probe_cache();
            let result = run_task(&dataset, task, 700 + i as u64, &config);
            assert_eq!(
                solo[i],
                ranking(&result),
                "task {} diverged with indexes disabled and {partitions} join partitions",
                task.id
            );
        }
    }

    // Scans on shared pools of every size vs the indexed solo runs.
    for pool_workers in [1usize, 2, 4] {
        let pool = SessionScheduler::new(pool_workers);
        for (i, task) in dataset.tasks.iter().enumerate() {
            let db = dataset.database(task);
            db.set_index_access(false);
            db.clear_probe_cache();
            let result = run_task_on(&dataset, task, 700 + i as u64, &config, Some(&pool));
            assert_eq!(
                solo[i],
                ranking(&result),
                "task {} diverged with indexes disabled on a {pool_workers}-worker pool",
                task.id
            );
        }
    }

    // Scans under the service at every priority class vs the indexed solo
    // runs; indexes are re-enabled afterwards and must still agree.
    let service = SynthesisService::new(ServiceConfig {
        workers: 2,
        max_live_sessions: 4,
        max_queued: 32,
        ..ServiceConfig::default()
    });
    for (enabled, class) in
        [false, true].into_iter().flat_map(|e| PriorityClass::ALL.into_iter().map(move |c| (e, c)))
    {
        let tickets: Vec<_> = dataset
            .tasks
            .iter()
            .enumerate()
            .map(|(i, task)| {
                let db = dataset.database(task);
                db.set_index_access(enabled);
                db.clear_probe_cache();
                let (gold, tsq) =
                    synthesize_tsq(db, &task.gold, TsqDetail::Full, 2, 700 + i as u64);
                let model = NoisyOracleGuidance::new(gold, 700 + i as u64);
                let request =
                    SynthesisRequest::new(Arc::clone(db), task.nlq.clone(), Arc::new(model))
                        .with_tsq(tsq)
                        .with_config(config.clone())
                        .with_priority(class);
                service.submit(request).expect("admitted")
            })
            .collect();
        for (i, ticket) in tickets.into_iter().enumerate() {
            let outcome = ticket.wait();
            assert_eq!(outcome.status, RequestStatus::Completed, "task {i} at {class:?}");
            assert_eq!(
                solo[i],
                ranking(&outcome.result),
                "task {i} diverged through the service at priority {class:?} \
                 with index access {}",
                if enabled { "enabled" } else { "disabled" }
            );
        }
    }
}

/// The serving layer inherits the engine's determinism: a request run
/// through `SynthesisService` — at any priority class, even while other
/// requests share the pool — emits candidates byte-identical to a
/// private-pool `SynthesisSession` run of the same task.
#[test]
fn service_requests_match_private_sessions_at_every_priority() {
    let dataset = workload();
    let config = base_config();
    let solo: Vec<_> = dataset
        .tasks
        .iter()
        .enumerate()
        .map(|(i, task)| ranking(&run_task_on(&dataset, task, 500 + i as u64, &config, None)))
        .collect();

    let service = SynthesisService::new(ServiceConfig {
        workers: 2,
        max_live_sessions: 4,
        max_queued: 32,
        ..ServiceConfig::default()
    });
    for class in PriorityClass::ALL {
        // All tasks in flight together, so runs of every class contend for
        // the shared pool while being compared against their solo rankings.
        let tickets: Vec<_> = dataset
            .tasks
            .iter()
            .enumerate()
            .map(|(i, task)| {
                let db = dataset.database(task);
                let (gold, tsq) =
                    synthesize_tsq(db, &task.gold, TsqDetail::Full, 2, 500 + i as u64);
                let model = NoisyOracleGuidance::new(gold, 500 + i as u64);
                let request =
                    SynthesisRequest::new(Arc::clone(db), task.nlq.clone(), Arc::new(model))
                        .with_tsq(tsq)
                        .with_config(config.clone())
                        .with_priority(class);
                service.submit(request).expect("admitted")
            })
            .collect();
        for (i, ticket) in tickets.into_iter().enumerate() {
            let outcome = ticket.wait();
            assert_eq!(outcome.status, RequestStatus::Completed, "task {i} at {class:?}");
            assert_eq!(
                solo[i],
                ranking(&outcome.result),
                "task {i} diverged through the service at priority {class:?}"
            );
        }
    }
    let stats = service.stats();
    assert_eq!(stats.live_sessions, 0, "requests must release their slots");
    assert_eq!(stats.scheduler.queue_depth, 0, "no work may be left behind");
}

/// OS threads of this process (Linux). Used to prove the service spawns no
/// per-request threads; `None` where /proc is unavailable.
fn process_threads() -> Option<usize> {
    std::fs::read_to_string("/proc/self/status").ok().and_then(|s| {
        s.lines()
            .find(|l| l.starts_with("Threads:"))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|n| n.parse().ok())
    })
}

/// The tentpole guarantee of thread-free session driving: **256 concurrent
/// live sessions** on one fixed pool — far beyond any sane thread count —
/// each emit byte-identically to their solo private-pool runs, for pool
/// worker counts {1, 2, 4}. The service reports zero per-request driver
/// threads, and the process's real thread count stays flat while all 256
/// are live.
#[test]
fn service_drives_256_live_sessions_thread_free_and_deterministically() {
    let dataset = workload();
    // A light configuration keeps 768 runs affordable; determinism is
    // config-independent, so a small budget proves the same contract.
    let config = DuoquestConfig {
        max_candidates: 6,
        max_expansions: 300,
        time_budget: None,
        ..Default::default()
    };
    let solo: Vec<_> = dataset
        .tasks
        .iter()
        .enumerate()
        .map(|(i, task)| ranking(&run_task_on(&dataset, task, 600 + i as u64, &config, None)))
        .collect();

    for pool_workers in [1usize, 2, 4] {
        let service = SynthesisService::new(ServiceConfig {
            workers: pool_workers,
            max_live_sessions: 256,
            max_queued: 16,
            ..ServiceConfig::default()
        });
        let threads_before = process_threads();
        let tickets: Vec<_> = (0..256)
            .map(|s| {
                let task_idx = s % dataset.tasks.len();
                let task = &dataset.tasks[task_idx];
                let db = dataset.database(task);
                let seed = 600 + task_idx as u64;
                let (gold, tsq) = synthesize_tsq(db, &task.gold, TsqDetail::Full, 2, seed);
                let model = NoisyOracleGuidance::new(gold, seed);
                let request =
                    SynthesisRequest::new(Arc::clone(db), task.nlq.clone(), Arc::new(model))
                        .with_tsq(tsq)
                        .with_config(config.clone())
                        .with_priority(PriorityClass::ALL[s % 3]);
                (task_idx, service.submit(request).expect("256 live slots admit all"))
            })
            .collect();

        // Every request is admitted live (none queued): the whole set is in
        // flight together on the fixed pool.
        let mid_stats = service.stats();
        assert_eq!(mid_stats.driver_threads, 0, "no per-request driver threads may exist");
        if let (Some(before), Some(during)) = (threads_before, process_threads()) {
            // 256 live sessions in the old one-thread-per-request design
            // would add ~256 OS threads; allow generous slack for unrelated
            // concurrent test threads.
            assert!(
                during < before + 64,
                "thread count grew from {before} to {during} with 256 live sessions"
            );
        }

        for (task_idx, ticket) in tickets {
            let outcome = ticket.wait();
            assert_eq!(
                outcome.status,
                RequestStatus::Completed,
                "task {task_idx} on {pool_workers} workers"
            );
            assert_eq!(
                solo[task_idx],
                ranking(&outcome.result),
                "task {task_idx} diverged among 256 live sessions on a \
                 {pool_workers}-worker pool"
            );
        }
        let stats = service.stats();
        assert_eq!(stats.driver_threads, 0);
        assert!(
            stats.live_sessions_peak >= 64,
            "live sessions should have stacked far beyond the worker count: {stats:?}"
        );
        assert_eq!(stats.live_sessions, 0, "every request released its slot");
        assert_eq!(stats.scheduler.queue_depth, 0, "no work left behind");
    }
}

/// The observability analogue of the worker-count guarantee: request
/// tracing (span recording, flight-recorder retention) must never perturb
/// emission. Runs through the service with tracing disabled emit
/// byte-identically to traced runs and to solo private-pool runs, across
/// pool sizes with every priority class in flight — and the flight
/// recorder retains a trace per request exactly when tracing is on.
#[test]
fn tracing_toggle_leaves_emission_byte_identical() {
    let dataset = workload();
    let config = base_config();
    let solo: Vec<_> = dataset
        .tasks
        .iter()
        .enumerate()
        .map(|(i, task)| ranking(&run_task_on(&dataset, task, 800 + i as u64, &config, None)))
        .collect();

    for tracing in [true, false] {
        for pool_workers in [1usize, 2] {
            let service = SynthesisService::new(ServiceConfig {
                workers: pool_workers,
                max_live_sessions: 8,
                max_queued: 32,
                tracing,
                ..ServiceConfig::default()
            });
            let tickets: Vec<_> = dataset
                .tasks
                .iter()
                .enumerate()
                .map(|(i, task)| {
                    let db = dataset.database(task);
                    let (gold, tsq) =
                        synthesize_tsq(db, &task.gold, TsqDetail::Full, 2, 800 + i as u64);
                    let model = NoisyOracleGuidance::new(gold, 800 + i as u64);
                    let request =
                        SynthesisRequest::new(Arc::clone(db), task.nlq.clone(), Arc::new(model))
                            .with_tsq(tsq)
                            .with_config(config.clone())
                            .with_priority(PriorityClass::ALL[i % 3]);
                    service.submit(request).expect("admitted")
                })
                .collect();
            let ids: Vec<u64> = tickets.iter().map(|t| t.id()).collect();
            for (i, ticket) in tickets.into_iter().enumerate() {
                let outcome = ticket.wait();
                assert_eq!(outcome.status, RequestStatus::Completed, "task {i}");
                assert_eq!(
                    solo[i],
                    ranking(&outcome.result),
                    "task {i} diverged with tracing {tracing} on {pool_workers} workers"
                );
            }
            for id in ids {
                assert_eq!(
                    service.trace(id).is_some(),
                    tracing,
                    "flight recorder must retain request {id}'s trace iff tracing is on"
                );
            }
        }
    }
}

/// The tentpole guarantee of any-k frontier emission: releasing candidates
/// the moment their confidence provably dominates every unexpanded state
/// must not change *what* is emitted or *how it ranks* — only *when* each
/// candidate is released. Any-k runs must be byte-identical to the
/// round-barrier default across private sessions, shared pools {1, 2, 4},
/// forced parallel joins at every partition count, pure-scan execution,
/// and the service at all three priority classes.
#[test]
fn any_k_emission_matches_round_barrier_everywhere() {
    let dataset = Arc::new(workload());
    let barrier = base_config();
    let any_k = base_config().with_emission_policy(EmissionPolicy::AnyK);
    // Ground truth: the round-barrier default on a private session.
    let solo: Vec<_> = dataset
        .tasks
        .iter()
        .enumerate()
        .map(|(i, task)| ranking(&run_task(&dataset, task, 900 + i as u64, &barrier)))
        .collect();

    // Any-k on a private session: identical set, ranking, and stats.
    for (i, task) in dataset.tasks.iter().enumerate() {
        let bar = run_task(&dataset, task, 900 + i as u64, &barrier);
        let any = run_task(&dataset, task, 900 + i as u64, &any_k);
        assert_eq!(solo[i], ranking(&any), "task {} diverged under any-k emission", task.id);
        assert_eq!(bar.stats.emitted, any.stats.emitted, "task {}", task.id);
        assert_eq!(bar.stats.expanded, any.stats.expanded, "task {}", task.id);
        assert_eq!(bar.stats.total_pruned(), any.stats.total_pruned(), "task {}", task.id);
    }

    // Any-k on shared pools of every size, with the beam widened so rounds
    // actually stream multi-chunk fan-outs through the scheduler.
    let beamed_any_k =
        base_config().with_parallelism(4, 2).with_emission_policy(EmissionPolicy::AnyK);
    let beamed_barrier = base_config().with_parallelism(4, 2);
    for pool_workers in [1usize, 2, 4] {
        let pool = SessionScheduler::new(pool_workers);
        for (i, task) in dataset.tasks.iter().enumerate() {
            let bar = run_task_on(&dataset, task, 900 + i as u64, &beamed_barrier, Some(&pool));
            let any = run_task_on(&dataset, task, 900 + i as u64, &beamed_any_k, Some(&pool));
            assert_eq!(
                ranking(&bar),
                ranking(&any),
                "task {} diverged under any-k on a {pool_workers}-worker pool",
                task.id
            );
        }
    }

    // Any-k with the parallel join forced onto every probe at each
    // partition count, and with index access disabled.
    for partitions in [1usize, 2, 4] {
        for (i, task) in dataset.tasks.iter().enumerate() {
            let db = dataset.database(task);
            db.set_parallel_join_threshold(1);
            db.set_join_partitions(partitions);
            db.clear_probe_cache();
            let result = run_task(&dataset, task, 900 + i as u64, &any_k);
            assert_eq!(
                solo[i],
                ranking(&result),
                "task {} diverged under any-k with {partitions} join partitions",
                task.id
            );
        }
    }
    for (i, task) in dataset.tasks.iter().enumerate() {
        let db = dataset.database(task);
        db.set_index_access(false);
        db.clear_probe_cache();
        let result = run_task(&dataset, task, 900 + i as u64, &any_k);
        assert_eq!(
            solo[i],
            ranking(&result),
            "task {} diverged under any-k with indexes disabled",
            task.id
        );
        db.set_index_access(true);
        db.clear_probe_cache();
    }

    // Any-k through the service at every priority class, all tasks in
    // flight together on a shared pool.
    let service = SynthesisService::new(ServiceConfig {
        workers: 2,
        max_live_sessions: 4,
        max_queued: 32,
        ..ServiceConfig::default()
    });
    for class in PriorityClass::ALL {
        let tickets: Vec<_> = dataset
            .tasks
            .iter()
            .enumerate()
            .map(|(i, task)| {
                let db = dataset.database(task);
                let (gold, tsq) =
                    synthesize_tsq(db, &task.gold, TsqDetail::Full, 2, 900 + i as u64);
                let model = NoisyOracleGuidance::new(gold, 900 + i as u64);
                let request =
                    SynthesisRequest::new(Arc::clone(db), task.nlq.clone(), Arc::new(model))
                        .with_tsq(tsq)
                        .with_config(base_config())
                        .with_emission_policy(EmissionPolicy::AnyK)
                        .with_priority(class);
                service.submit(request).expect("admitted")
            })
            .collect();
        for (i, ticket) in tickets.into_iter().enumerate() {
            let outcome = ticket.wait();
            assert_eq!(outcome.status, RequestStatus::Completed, "task {i} at {class:?}");
            assert_eq!(
                solo[i],
                ranking(&outcome.result),
                "task {i} diverged under any-k through the service at priority {class:?}"
            );
        }
    }
    let stats = service.stats();
    assert_eq!(stats.live_sessions, 0, "requests must release their slots");
    assert_eq!(stats.scheduler.queue_depth, 0, "no work may be left behind");
}

/// The executor-level analogue for cross-session probe sharing: whether
/// concurrent identical probes collapse onto one leader execution
/// (single-flight on, the default) or each runs independently must never change the
/// emitted candidates — solo and through the service with every task in
/// flight at once on one shared database.
#[test]
fn single_flight_toggle_leaves_emission_byte_identical() {
    let dataset = workload();
    let config = base_config();
    // Ground truth: single-flight on (the default), private session.
    let solo: Vec<_> = dataset
        .tasks
        .iter()
        .enumerate()
        .map(|(i, task)| ranking(&run_task(&dataset, task, 950 + i as u64, &config)))
        .collect();

    // Single-flight off, private session.
    for (i, task) in dataset.tasks.iter().enumerate() {
        let db = dataset.database(task);
        db.set_single_flight(false);
        db.clear_probe_cache();
        let result = run_task(&dataset, task, 950 + i as u64, &config);
        assert_eq!(
            solo[i],
            ranking(&result),
            "task {} diverged with single-flight disabled",
            task.id
        );
    }

    // Both toggles through the service with all tasks contending on the
    // shared database at once, under both emission policies.
    let service = SynthesisService::new(ServiceConfig {
        workers: 2,
        max_live_sessions: 8,
        max_queued: 32,
        ..ServiceConfig::default()
    });
    for single_flight in [true, false] {
        for emission in [EmissionPolicy::RoundBarrier, EmissionPolicy::AnyK] {
            let tickets: Vec<_> = dataset
                .tasks
                .iter()
                .enumerate()
                .map(|(i, task)| {
                    let db = dataset.database(task);
                    db.set_single_flight(single_flight);
                    db.clear_probe_cache();
                    let (gold, tsq) =
                        synthesize_tsq(db, &task.gold, TsqDetail::Full, 2, 950 + i as u64);
                    let model = NoisyOracleGuidance::new(gold, 950 + i as u64);
                    let request =
                        SynthesisRequest::new(Arc::clone(db), task.nlq.clone(), Arc::new(model))
                            .with_tsq(tsq)
                            .with_config(config.clone())
                            .with_emission_policy(emission)
                            .with_priority(PriorityClass::ALL[i % 3]);
                    service.submit(request).expect("admitted")
                })
                .collect();
            for (i, ticket) in tickets.into_iter().enumerate() {
                let outcome = ticket.wait();
                assert_eq!(outcome.status, RequestStatus::Completed, "task {i}");
                assert_eq!(
                    solo[i],
                    ranking(&outcome.result),
                    "task {i} diverged with single-flight {single_flight} and {emission:?}"
                );
            }
        }
    }
}

#[test]
fn wide_beam_runs_are_self_deterministic() {
    // A beam wider than 1 explores in a different (but still fixed) order;
    // two runs with the same beam and different worker counts must agree.
    let dataset = workload();
    let beamed_a = base_config().with_parallelism(2, 4);
    let beamed_b = base_config().with_parallelism(4, 4);
    for (i, task) in dataset.tasks.iter().enumerate() {
        let a = run_task(&dataset, task, 200 + i as u64, &beamed_a);
        let b = run_task(&dataset, task, 200 + i as u64, &beamed_b);
        assert_eq!(ranking(&a), ranking(&b), "task {} beam run diverged", task.id);
    }
}
