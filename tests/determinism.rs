//! Determinism of the parallel synthesis core: for a fixed configuration the
//! candidate set and ranking must be a pure function of the inputs — never of
//! the worker count or thread scheduling — on a fixed synthetic Spider
//! workload.

use duoquest::core::{Duoquest, DuoquestConfig, SynthesisResult};
use duoquest::nlq::NoisyOracleGuidance;
use duoquest::workloads::{spider, synthesize_tsq, TsqDetail};
use std::sync::Arc;

/// A reduced, fixed workload: 1 database, 6 tasks across difficulties.
fn workload() -> spider::SpiderDataset {
    spider::generate("determinism", 1, 2, 2, 2, 33)
}

fn base_config() -> DuoquestConfig {
    DuoquestConfig {
        max_candidates: 20,
        max_expansions: 1_500,
        // No wall-clock budget: timeouts are the one intentionally
        // non-deterministic cut-off.
        time_budget: None,
        ..Default::default()
    }
}

fn run_task(
    dataset: &spider::SpiderDataset,
    task: &spider::SpiderTask,
    seed: u64,
    config: &DuoquestConfig,
) -> SynthesisResult {
    let db = dataset.database(task);
    let (gold, tsq) = synthesize_tsq(db, &task.gold, TsqDetail::Full, 2, seed);
    let model = NoisyOracleGuidance::new(gold, seed);
    Duoquest::new(config.clone())
        .session(Arc::clone(db), task.nlq.clone(), Arc::new(model))
        .with_tsq(tsq)
        .run()
}

/// Candidate list rendered as comparable `(structure, confidence)` pairs in
/// final ranking order.
fn ranking(result: &SynthesisResult) -> Vec<(String, f64)> {
    result.candidates.iter().map(|c| (format!("{:?}", c.spec), c.confidence)).collect()
}

#[test]
fn parallel_session_equals_sequential_path_per_task() {
    let dataset = workload();
    let sequential = base_config(); // workers = 1, beam = 1
    let parallel = base_config().with_parallelism(4, 1);
    for (i, task) in dataset.tasks.iter().enumerate() {
        let seq = run_task(&dataset, task, 100 + i as u64, &sequential);
        let par = run_task(&dataset, task, 100 + i as u64, &parallel);
        assert_eq!(
            ranking(&seq),
            ranking(&par),
            "task {} diverged between sequential and parallel sessions",
            task.id
        );
        assert_eq!(seq.stats.emitted, par.stats.emitted, "task {}", task.id);
        assert_eq!(seq.stats.expanded, par.stats.expanded, "task {}", task.id);
        assert_eq!(seq.stats.total_pruned(), par.stats.total_pruned(), "task {}", task.id);
    }
}

#[test]
fn wide_beam_runs_are_self_deterministic() {
    // A beam wider than 1 explores in a different (but still fixed) order;
    // two runs with the same beam and different worker counts must agree.
    let dataset = workload();
    let beamed_a = base_config().with_parallelism(2, 4);
    let beamed_b = base_config().with_parallelism(4, 4);
    for (i, task) in dataset.tasks.iter().enumerate() {
        let a = run_task(&dataset, task, 200 + i as u64, &beamed_a);
        let b = run_task(&dataset, task, 200 + i as u64, &beamed_b);
        assert_eq!(ranking(&a), ranking(&b), "task {} beam run diverged", task.id);
    }
}
